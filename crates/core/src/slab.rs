//! The slab heaps (small and large).
//!
//! The small heap serves 8 B – 1 KiB blocks from 32 KiB slabs; the large
//! heap serves 1 KiB – 512 KiB blocks from 512 KiB slabs. Both share the
//! design of paper §3.1.1:
//!
//! * The data region is divided into fixed-size slabs; the heap length
//!   (`SmallGlobal.len`) is the current slab count and only grows.
//! * Slabs move between the states of Figure 4: **unmapped** (past the
//!   heap length), **global** (on the CAS-managed global free list),
//!   **TL unsized** (owned, no class, all memory available), **TL
//!   sized** (owned, classed, non-full), **detached** (full, owned,
//!   unlinked — no remote frees yet), and **disowned** (full, unowned,
//!   unlinked — had remote frees).
//! * Each slab splits its metadata between an 8-byte HWcc descriptor
//!   (the remote-free counter, a detectable-CAS cell) and a SWcc
//!   descriptor (header + free count + block bitset) that only the owner
//!   writes.
//!
//! The remote-free protocol is the paper's §3.2.1: remote frees only
//! decrement the HWcc counter (which counts *down* so correctness never
//! depends on the possibly-stale class field); the thread whose decrement
//! reaches zero steals the slab. Detached slabs let fully-remote-freed
//! slabs (producer/consumer) be reclaimed without coordinating with the
//! owner; disowning forces mixed local/remote slabs to eventually drain
//! through the remote path.
//!
//! The SWcc discipline is §3.2.2: owners keep descriptors cached and only
//! flush + fence when ownership may change (push to global, detach,
//! disown); readers flush before loading `next` on the global-list path;
//! the `owner` field may be read from cache without flushing (the
//! four-case argument in the paper, reproduced in this crate's tests).
//!
//! Every structural step first updates the thread's 8-byte recovery log
//! (§3.4.2); `recovery.rs` redoes interrupted steps idempotently.

use crate::bitset::BlockBits;
use crate::cell::{flags, Detect, LogWord, SwccHeader};
use crate::class::ClassTable;
use crate::ctx::Ctx;
use crate::error::{AllocError, HeapKind};
use crate::recovery::Op;
use crate::remote;
use crate::remote::RemoteFreeBuffer;
use cxl_pod::trace::TraceKind;
use cxl_pod::{CoreId, HeapLayout, PodMemory};

/// Crash-point labels compiled into this module (white-box failure
/// tests iterate these).
pub const CRASH_POINTS: &[&str] = &[
    "slab::alloc_block::rover",
    "slab::alloc_block::after_log",
    "slab::alloc_block::after_clear",
    "slab::alloc_block::after_deliver",
    "slab::alloc_block::after_unlink",
    "slab::alloc_block::after_transition",
    "slab::free_local::after_log",
    "slab::free_local::after_set",
    "slab::free_local::after_relink",
    "slab::remote_free::after_log",
    "slab::remote_free::after_cas",
    "slab::remote_free::before_steal_push",
    "slab::init::after_log",
    "slab::init::mid",
    "slab::pop_global::after_log",
    "slab::pop_global::after_cas",
    "slab::push_global::after_log",
    "slab::push_global::after_pop",
    "slab::push_global::after_cas",
    "slab::extend::after_log",
    "slab::extend::after_cas",
];

/// Crash-point labels on the *batched* remote-free publish path. Kept
/// out of [`CRASH_POINTS`] so schedule generation (which indexes that
/// list by RNG draw) is unperturbed for configurations that never
/// batch; the batched crash matrix iterates this list separately.
pub const BATCH_CRASH_POINTS: &[&str] = &[
    "slab::remote_free::publish_after_log",
    "slab::remote_free::publish_after_cas",
];

/// One slab heap (instantiated once for small, once for large).
#[derive(Debug, Clone, Copy)]
pub struct SlabHeap {
    /// Which heap this is.
    pub kind: HeapKind,
    /// Its size-class table.
    pub classes: ClassTable,
}

impl SlabHeap {
    /// The small heap.
    pub fn small() -> Self {
        SlabHeap {
            kind: HeapKind::Small,
            classes: crate::class::SMALL_CLASSES_TABLE,
        }
    }

    /// The large heap.
    pub fn large() -> Self {
        SlabHeap {
            kind: HeapKind::Large,
            classes: crate::class::LARGE_CLASSES_TABLE,
        }
    }

    /// The slab heap for `kind` (huge is not a slab heap).
    pub(crate) fn of(kind: HeapKind) -> Self {
        match kind {
            HeapKind::Small => Self::small(),
            HeapKind::Large => Self::large(),
            HeapKind::Huge => unreachable!("huge heap is not a slab heap"),
        }
    }

    /// This heap's region layout.
    pub fn hl<'a>(&self, mem: &'a dyn PodMemory) -> &'a HeapLayout {
        match self.kind {
            HeapKind::Small => &mem.layout().small,
            HeapKind::Large => &mem.layout().large,
            HeapKind::Huge => unreachable!("huge heap is not a slab heap"),
        }
    }

    fn op(&self, op: Op) -> u8 {
        op.encode(self.kind)
    }

    // ---- descriptor accessors ------------------------------------------
    //
    // All four route through the calling thread's descriptor shadow
    // when it has one (see `shadow.rs`): loads are served from the
    // shadow, stores are absorbed (software-coherent backends) or
    // written through (coherent backends). Contexts without a shadow —
    // recovery, the invariant checker's probes, fault handling — hit
    // pod memory directly, as before.

    pub(crate) fn header(&self, ctx: &Ctx<'_>, slab: u32) -> SwccHeader {
        if let Some(shadow) = ctx.shadow {
            if let Some(packed) = shadow.header(self.kind, slab) {
                return SwccHeader::unpack(packed);
            }
            let packed = ctx.mem.load_u64(ctx.core, self.hl(ctx.mem).swcc_desc_at(slab));
            shadow.install_header(ctx.mem, ctx.core, self.kind, slab, packed);
            return SwccHeader::unpack(packed);
        }
        SwccHeader::unpack(ctx.mem.load_u64(ctx.core, self.hl(ctx.mem).swcc_desc_at(slab)))
    }

    pub(crate) fn set_header(&self, ctx: &Ctx<'_>, slab: u32, header: SwccHeader) {
        let packed = header.pack();
        if let Some(shadow) = ctx.shadow {
            if shadow.store_header(ctx.mem, ctx.core, self.kind, slab, packed) {
                return;
            }
        }
        ctx.mem
            .store_u64(ctx.core, self.hl(ctx.mem).swcc_desc_at(slab), packed);
    }

    pub(crate) fn free_count(&self, ctx: &Ctx<'_>, slab: u32) -> u32 {
        if let Some(shadow) = ctx.shadow {
            if let Some(count) = shadow.free_count(self.kind, slab) {
                return count as u32;
            }
            let count = ctx.mem.load_u64(ctx.core, self.hl(ctx.mem).free_count_at(slab));
            shadow.install_count(ctx.mem, ctx.core, self.kind, slab, count);
            return count as u32;
        }
        ctx.mem.load_u64(ctx.core, self.hl(ctx.mem).free_count_at(slab)) as u32
    }

    pub(crate) fn set_free_count(&self, ctx: &Ctx<'_>, slab: u32, count: u32) {
        if let Some(shadow) = ctx.shadow {
            if shadow.store_count(ctx.mem, ctx.core, self.kind, slab, count as u64) {
                return;
            }
        }
        ctx.mem
            .store_u64(ctx.core, self.hl(ctx.mem).free_count_at(slab), count as u64);
    }

    pub(crate) fn bits<'m>(&self, ctx: &Ctx<'m>, slab: u32, class: u8) -> BlockBits<'m> {
        BlockBits::new(
            ctx.mem,
            self.hl(ctx.mem).bitset_at(slab),
            self.classes.blocks_per_slab(class),
        )
    }

    /// Flushes a slab's entire SWcc descriptor (header, count, bitset)
    /// and fences — required before any transition after which another
    /// thread may become the owner (§3.2.2).
    pub(crate) fn flush_desc(&self, ctx: &Ctx<'_>, slab: u32) {
        let hl = self.hl(ctx.mem);
        // Drain deferred shadow stores into the cache first (so the
        // flush writes them back) and forget the entry: after the flush
        // another thread may own the descriptor.
        if let Some(shadow) = ctx.shadow {
            shadow.drop_entry(ctx.mem, ctx.core, self.kind, slab);
        }
        ctx.mem
            .flush(ctx.core, hl.swcc_desc_at(slab), hl.swcc_desc_stride);
        ctx.mem.fence(ctx.core);
    }

    /// Current heap length (number of mapped slabs).
    pub fn len(&self, mem: &dyn PodMemory, core: CoreId) -> u32 {
        Detect::unpack(mem.load_u64(core, self.hl(mem).global_len)).payload
    }

    /// Whether the heap has no slabs yet.
    pub fn is_empty(&self, mem: &dyn PodMemory, core: CoreId) -> bool {
        self.len(mem, core) == 0
    }

    // ---- private (thread-local) free lists ------------------------------

    fn head_of(&self, ctx: &Ctx<'_>, head_off: u64) -> Option<u32> {
        let raw = ctx.mem.load_u64(ctx.core, head_off) as u32;
        raw.checked_sub(1)
    }

    pub(crate) fn unsized_head_off(&self, ctx: &Ctx<'_>) -> u64 {
        self.hl(ctx.mem).local_unsized_at(ctx.tid.slot())
    }

    pub(crate) fn sized_head_off(&self, ctx: &Ctx<'_>, class: u8) -> u64 {
        self.hl(ctx.mem).local_sized_at(ctx.tid.slot(), class as u32)
    }

    /// Pushes `slab` onto the private list at `head_off`.
    pub(crate) fn push_local(&self, ctx: &Ctx<'_>, head_off: u64, slab: u32) {
        let old = ctx.mem.load_u64(ctx.core, head_off) as u32;
        let mut header = self.header(ctx, slab);
        header.next = old;
        self.set_header(ctx, slab, header);
        ctx.mem.store_u64(ctx.core, head_off, (slab + 1) as u64);
    }

    /// Pops the head of the private list at `head_off`.
    pub(crate) fn pop_local(&self, ctx: &Ctx<'_>, head_off: u64) -> Option<u32> {
        let slab = self.head_of(ctx, head_off)?;
        let header = self.header(ctx, slab);
        ctx.mem.store_u64(ctx.core, head_off, header.next as u64);
        Some(slab)
    }

    /// Removes `slab` from the private list at `head_off`; returns
    /// whether it was present. Private lists are short, so this walk is
    /// cheap; only the owning thread (or its recoverer) calls it.
    pub(crate) fn remove_local(&self, ctx: &Ctx<'_>, head_off: u64, slab: u32) -> bool {
        let mut prev: Option<u32> = None;
        let mut cursor = self.head_of(ctx, head_off);
        let mut hops = 0u32;
        while let Some(cur) = cursor {
            assert!(
                hops <= self.hl(ctx.mem).max_slabs,
                "cycle in private free list at head {head_off:#x}"
            );
            hops += 1;
            let header = self.header(ctx, cur);
            if cur == slab {
                match prev {
                    None => ctx.mem.store_u64(ctx.core, head_off, header.next as u64),
                    Some(p) => {
                        let mut ph = self.header(ctx, p);
                        ph.next = header.next;
                        self.set_header(ctx, p, ph);
                    }
                }
                return true;
            }
            prev = Some(cur);
            cursor = header.next.checked_sub(1);
        }
        false
    }

    /// Whether `slab` is on the private list at `head_off`.
    pub(crate) fn contains_local(&self, ctx: &Ctx<'_>, head_off: u64, slab: u32) -> bool {
        let mut cursor = self.head_of(ctx, head_off);
        let mut hops = 0u32;
        while let Some(cur) = cursor {
            assert!(hops <= self.hl(ctx.mem).max_slabs, "cycle in private free list");
            hops += 1;
            if cur == slab {
                return true;
            }
            cursor = self.header(ctx, cur).next.checked_sub(1);
        }
        false
    }

    /// Walks the private list at `head_off`, up to `cap` nodes.
    pub(crate) fn list_len(&self, ctx: &Ctx<'_>, head_off: u64, cap: u32) -> u32 {
        let mut n = 0;
        let mut cursor = self.head_of(ctx, head_off);
        while let Some(cur) = cursor {
            n += 1;
            if n >= cap {
                break;
            }
            cursor = self.header(ctx, cur).next.checked_sub(1);
        }
        n
    }

    // ---- slab acquisition -------------------------------------------------

    /// Initializes `slab` for `class` and links it into the calling
    /// thread's sized list. The slab must be owned by the caller and
    /// unlinked (freshly popped from the unsized list, the global list,
    /// or the heap end).
    fn init_slab(&self, ctx: &Ctx<'_>, slab: u32, class: u8) {
        ctx.log().begin(
            ctx.core,
            LogWord {
                op: self.op(Op::InitSlab),
                a: slab,
                b: class,
                c: 0,
            },
            &[],
        );
        ctx.crash_point("slab::init::after_log");
        self.init_slab_body(ctx, slab, class);
        ctx.log().clear_relaxed(ctx.core);
    }

    /// The (idempotent) body of slab initialization; also called by
    /// recovery to redo an interrupted init.
    pub(crate) fn init_slab_body(&self, ctx: &Ctx<'_>, slab: u32, class: u8) {
        let blocks = self.classes.blocks_per_slab(class);
        self.set_header(ctx, slab, SwccHeader {
            next: 0,
            owner: ctx.tid.raw(),
            class,
            flags: flags::SIZED,
        });
        self.set_free_count(ctx, slab, blocks);
        ctx.crash_point("slab::init::mid");
        self.bits(ctx, slab, class).set_all(ctx.core);
        // Reset the remote-free counter to the block count. A plain
        // store is safe: no block of this slab is live, so no thread can
        // be racing a remote free (§3.1.1).
        ctx.mem.store_u64(
            ctx.core,
            self.hl(ctx.mem).hwcc_desc_at(slab),
            Detect {
                version: 0,
                tid: 0,
                payload: blocks,
            }
            .pack(),
        );
        if !self.contains_local(ctx, self.sized_head_off(ctx, class), slab) {
            self.push_local(ctx, self.sized_head_off(ctx, class), slab);
        }
    }

    /// The stripe of the global free list `ctx.tid` homes to. Stripe 0
    /// is the legacy head cell; the rest live in their own cachelines
    /// at the segment tail, so threads on different stripes never
    /// contend on the same line.
    pub(crate) fn home_stripe(&self, ctx: &Ctx<'_>) -> u32 {
        ctx.tid.slot() % self.hl(ctx.mem).global_stripes
    }

    /// Pops a slab from the striped global free list: the home stripe
    /// first, then deterministic round-robin work-stealing over the
    /// remaining stripes when the home stripe is empty.
    fn pop_global(&self, ctx: &Ctx<'_>) -> Option<u32> {
        let stripes = self.hl(ctx.mem).global_stripes;
        let home = self.home_stripe(ctx);
        for probe in 0..stripes {
            let stripe = (home + probe) % stripes;
            if let Some(slab) = self.pop_global_stripe(ctx, stripe) {
                return Some(slab);
            }
        }
        None
    }

    /// Pops from one stripe's head cell (paper §3.2.2's
    /// flush-before-load discipline on `next`). Returns `None` when the
    /// stripe is empty; CAS contention retries the *same* stripe — the
    /// head changed, so it is non-empty and progress is someone's.
    fn pop_global_stripe(&self, ctx: &Ctx<'_>, stripe: u32) -> Option<u32> {
        let hl = self.hl(ctx.mem);
        let head_cell = hl.global_free_at(stripe);
        let dcas = ctx.dcas();
        loop {
            let head = dcas.read(ctx.core, head_cell);
            let slab = head.payload.checked_sub(1)?;
            // Readers flush before loading SWccDesc.next; a stale load is
            // caught by the CAS on the head (version mismatch). The
            // shadow entry (a clean read-install at most — we don't own
            // slabs on the global list) is dropped for the same reason.
            if let Some(shadow) = ctx.shadow {
                shadow.drop_entry(ctx.mem, ctx.core, self.kind, slab);
            }
            ctx.mem.flush(ctx.core, hl.swcc_desc_at(slab), 8);
            let next = self.header(ctx, slab).next;
            let version = ctx.log().bump_version(ctx.core);
            ctx.log().begin(
                ctx.core,
                LogWord {
                    op: self.op(Op::PopGlobal),
                    a: slab,
                    b: stripe as u8,
                    c: version,
                },
                &[],
            );
            ctx.crash_point("slab::pop_global::after_log");
            if dcas
                .attempt(ctx.core, head_cell, head, next, ctx.tid, version)
                .is_ok()
            {
                ctx.crash_point("slab::pop_global::after_cas");
                return Some(slab);
            }
            ctx.log().clear_relaxed(ctx.core);
            ctx.mem
                .note_cas_retry_at(cxl_pod::stats::CasRetrySite::PopGlobal);
            ctx.mem.trace_op(ctx.core, TraceKind::CasRetry, head_cell);
        }
    }

    /// Pushes `slab` (owned, unlinked, empty) onto the calling thread's
    /// home stripe of the global free list. The stripe index travels in
    /// the oplog record's `b` byte so recovery detects against the
    /// right head cell.
    pub(crate) fn push_global(&self, ctx: &Ctx<'_>, slab: u32) {
        let hl = self.hl(ctx.mem);
        let stripe = self.home_stripe(ctx);
        let head_cell = hl.global_free_at(stripe);
        let dcas = ctx.dcas();
        loop {
            let head = dcas.read(ctx.core, head_cell);
            // Slabs on the global list are unowned and unsized.
            self.set_header(ctx, slab, SwccHeader {
                next: head.payload,
                owner: 0,
                class: 0,
                flags: 0,
            });
            // Ownership is about to change: flush + fence the descriptor
            // before publishing (§3.2.2).
            self.flush_desc(ctx, slab);
            let version = ctx.log().bump_version(ctx.core);
            ctx.log().begin(
                ctx.core,
                LogWord {
                    op: self.op(Op::PushGlobal),
                    a: slab,
                    b: stripe as u8,
                    c: version,
                },
                &[],
            );
            ctx.crash_point("slab::push_global::after_log");
            if dcas
                .attempt(ctx.core, head_cell, head, slab + 1, ctx.tid, version)
                .is_ok()
            {
                ctx.crash_point("slab::push_global::after_cas");
                ctx.log().clear_relaxed(ctx.core);
                return;
            }
            ctx.log().clear_relaxed(ctx.core);
            ctx.mem
                .note_cas_retry_at(cxl_pod::stats::CasRetrySite::PopGlobal);
            ctx.mem.trace_op(ctx.core, TraceKind::CasRetry, head_cell);
        }
    }

    /// Extends the heap by one slab; returns the new slab's index.
    fn extend(&self, ctx: &Ctx<'_>) -> Option<u32> {
        let hl = self.hl(ctx.mem);
        let dcas = ctx.dcas();
        loop {
            let len = dcas.read(ctx.core, hl.global_len);
            if len.payload >= hl.max_slabs {
                return None;
            }
            let version = ctx.log().bump_version(ctx.core);
            ctx.log().begin(
                ctx.core,
                LogWord {
                    op: self.op(Op::Extend),
                    a: len.payload,
                    b: 0,
                    c: version,
                },
                &[],
            );
            ctx.crash_point("slab::extend::after_log");
            if dcas
                .attempt(ctx.core, hl.global_len, len, len.payload + 1, ctx.tid, version)
                .is_ok()
            {
                ctx.crash_point("slab::extend::after_cas");
                let slab = len.payload;
                self.map_upto(ctx, slab as u64 + 1);
                return Some(slab);
            }
            ctx.log().clear_relaxed(ctx.core);
        }
    }

    /// Installs this process's mappings up to `slabs` slabs (the three
    /// mappings of §3.3.1, modeled as the process's heap watermark).
    pub(crate) fn map_upto(&self, ctx: &Ctx<'_>, slabs: u64) {
        match self.kind {
            HeapKind::Small => ctx.process.map_small_upto(slabs),
            HeapKind::Large => ctx.process.map_large_upto(slabs),
            HeapKind::Huge => unreachable!(),
        }
    }

    /// Acquires a slab for `class` into the sized list, per the paper's
    /// transfer order: thread-local unsized list, global free list, heap
    /// extension.
    fn acquire(&self, ctx: &Ctx<'_>, class: u8) -> Result<(), AllocError> {
        let slab = if let Some(slab) = self.head_of(ctx, self.unsized_head_off(ctx)) {
            // We log the init *before* popping so recovery can redo the
            // pop (the init body is idempotent and pops if still linked).
            ctx.log().begin(
                ctx.core,
                LogWord {
                    op: self.op(Op::InitSlab),
                    a: slab,
                    b: class,
                    c: 0,
                },
                &[],
            );
            ctx.crash_point("slab::init::after_log");
            self.pop_local(ctx, self.unsized_head_off(ctx));
            self.init_slab_body(ctx, slab, class);
            ctx.log().clear_relaxed(ctx.core);
            return Ok(());
        } else if let Some(slab) = self.pop_global(ctx) {
            slab
        } else if let Some(slab) = self.extend(ctx) {
            slab
        } else {
            return Err(AllocError::OutOfMemory {
                heap: self.kind,
                size: self.classes.block_size(class) as usize,
            });
        };
        self.init_slab(ctx, slab, class);
        Ok(())
    }

    // ---- allocation ------------------------------------------------------

    /// Allocates `size` bytes; returns the block's segment offset.
    ///
    /// `detect_dst` is an optional segment offset of an 8-byte cell the
    /// caller will store the resulting pointer into; recovery uses it to
    /// decide whether an interrupted allocation reached the application
    /// (see `recovery.rs`).
    pub(crate) fn alloc(&self, ctx: &Ctx<'_>, size: usize, detect_dst: u64) -> Result<u64, AllocError> {
        let class = self
            .classes
            .class_of(size)
            .ok_or(AllocError::InvalidSize { size })?;
        if let Some(mags) = ctx.magazines {
            while let Some((slab, bit)) = mags.pop(self.kind, class) {
                // A magazine hint is advisory: the slab may have been
                // emptied, reclassed, or stolen since the hint was
                // pushed, or the block reallocated. Re-validate owner,
                // class, and the bitset bit; discard stale hints.
                let header = self.header(ctx, slab);
                if header.owner == ctx.tid.raw()
                    && header.flags & flags::SIZED != 0
                    && header.class == class
                    && self.bits(ctx, slab, class).get(ctx.core, bit)
                {
                    return Ok(self.alloc_block_hint(ctx, slab, class, bit, detect_dst));
                }
            }
        }
        loop {
            let Some(slab) = self.head_of(ctx, self.sized_head_off(ctx, class)) else {
                self.acquire(ctx, class)?;
                continue;
            };
            return Ok(self.alloc_block(ctx, slab, class, detect_dst));
        }
    }

    /// Allocates one block from `slab` (the head of the caller's sized
    /// list for `class`), handling the full-slab transition.
    fn alloc_block(&self, ctx: &Ctx<'_>, slab: u32, class: u8, detect_dst: u64) -> u64 {
        let bits = self.bits(ctx, slab, class);
        // Next-fit: start the scan at the volatile per-slab rover hint.
        // Any hint value is safe — the scan re-validates the durable
        // bitset word by word and wraps — and the log word below records
        // the *chosen* bit, so recovery never depends on scan order. A
        // crash here loses only the hint.
        let hint = match ctx.shadow {
            Some(shadow) if ctx.rover => shadow.rover(self.kind, slab),
            _ => 0,
        };
        let bit = bits
            .find_set_from(ctx.core, hint)
            .expect("sized-list invariant: slabs on sized lists are non-full");
        ctx.crash_point("slab::alloc_block::rover");
        if let Some(shadow) = ctx.shadow {
            if ctx.rover {
                shadow.set_rover(ctx.mem, ctx.core, self.kind, slab, bit + 1);
            }
        }
        ctx.log().begin(
            ctx.core,
            LogWord {
                op: self.op(Op::AllocBlock),
                a: slab,
                b: class,
                c: bit as u16,
            },
            &[detect_dst],
        );
        ctx.crash_point("slab::alloc_block::after_log");
        bits.clear(ctx.core, bit);
        let remaining = self.free_count(ctx, slab) - 1;
        self.set_free_count(ctx, slab, remaining);
        ctx.crash_point("slab::alloc_block::after_clear");
        if remaining == 0 {
            // The slab is now full: unlink it so the sized list only
            // holds non-full slabs, then detach or disown (Figure 4).
            self.pop_local(ctx, self.sized_head_off(ctx, class));
            ctx.crash_point("slab::alloc_block::after_unlink");
            self.full_transition(ctx, slab, class);
            ctx.crash_point("slab::alloc_block::after_transition");
        }
        self.finish_alloc(ctx, slab, class, bit, detect_dst)
    }

    /// Allocates the specific free block `bit` of owned, sized `slab` (a
    /// validated magazine hint). Identical to [`Self::alloc_block`]
    /// except the slab need not be its sized list's head, so the
    /// full-slab transition unlinks with `remove_local`. Recovery is
    /// shared: the redo of `AllocBlock` already locates the slab by
    /// index, not list position.
    fn alloc_block_hint(
        &self,
        ctx: &Ctx<'_>,
        slab: u32,
        class: u8,
        bit: u32,
        detect_dst: u64,
    ) -> u64 {
        let bits = self.bits(ctx, slab, class);
        // Keep the first-fit rover moving even on the magazine path, so
        // a later scan resumes past the block the hint just consumed.
        if let Some(shadow) = ctx.shadow {
            if ctx.rover {
                shadow.set_rover(ctx.mem, ctx.core, self.kind, slab, bit + 1);
            }
        }
        ctx.log().begin(
            ctx.core,
            LogWord {
                op: self.op(Op::AllocBlock),
                a: slab,
                b: class,
                c: bit as u16,
            },
            &[detect_dst],
        );
        ctx.crash_point("slab::alloc_block::after_log");
        bits.clear(ctx.core, bit);
        let remaining = self.free_count(ctx, slab) - 1;
        self.set_free_count(ctx, slab, remaining);
        ctx.crash_point("slab::alloc_block::after_clear");
        if remaining == 0 {
            self.remove_local(ctx, self.sized_head_off(ctx, class), slab);
            ctx.crash_point("slab::alloc_block::after_unlink");
            self.full_transition(ctx, slab, class);
            ctx.crash_point("slab::alloc_block::after_transition");
        }
        self.finish_alloc(ctx, slab, class, bit, detect_dst)
    }

    /// Common allocation epilogue: deliver the pointer, retire the log
    /// entry, return the block offset.
    ///
    /// When the caller asked for detectability (`detect_dst != 0`), the
    /// block offset is stored into `*detect_dst` *before* the log entry
    /// is cleared. The redo log's `AllocBlock` handler keeps the block
    /// iff `*detect_dst` names it, so delivering here — rather than
    /// trusting the application to store after we return — closes the
    /// window where a crash between our return and the application's own
    /// store would leak the block. The store goes straight to the
    /// segment: `detect_dst` is application data, written exactly as the
    /// caller would have written it.
    fn finish_alloc(&self, ctx: &Ctx<'_>, slab: u32, class: u8, bit: u32, detect_dst: u64) -> u64 {
        let block =
            self.hl(ctx.mem).slab_data_at(slab) + bit as u64 * self.classes.block_size(class) as u64;
        if detect_dst != 0 {
            ctx.mem
                .segment()
                .atomic_u64(detect_dst)
                .store(block, std::sync::atomic::Ordering::SeqCst);
            ctx.crash_point("slab::alloc_block::after_deliver");
        }
        ctx.log().clear_relaxed(ctx.core);
        block
    }

    /// Detaches or disowns a just-full slab, per its remote counter.
    /// Idempotent (also used by recovery).
    pub(crate) fn full_transition(&self, ctx: &Ctx<'_>, slab: u32, class: u8) {
        let hl = self.hl(ctx.mem);
        let remote = Detect::unpack(ctx.mem.load_u64(ctx.core, hl.hwcc_desc_at(slab))).payload;
        let blocks = self.classes.blocks_per_slab(class);
        if remote == blocks {
            // No remote frees: detach, keeping ownership. The descriptor
            // must be durable before our allocation returns, because the
            // final remote free may steal the slab and read it.
            self.flush_desc(ctx, slab);
        } else {
            // At least one remote free: disown so every subsequent free
            // takes the remote path and the whole slab drains (§3.2.1).
            let mut header = self.header(ctx, slab);
            header.owner = 0;
            self.set_header(ctx, slab, header);
            self.flush_desc(ctx, slab);
        }
    }

    // ---- deallocation ------------------------------------------------------

    /// Frees the block at segment offset `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::NotAllocated`] for misaligned interior
    /// pointers, blocks that are already free, or slabs past the heap
    /// length.
    pub(crate) fn dealloc(&self, ctx: &Ctx<'_>, offset: u64) -> Result<(), AllocError> {
        let hl = self.hl(ctx.mem);
        let slab = hl
            .slab_of(offset)
            .ok_or(AllocError::WildPointer { offset })?;
        // No heap-length check here: it would cost an HWcc read on every
        // free. A pointer past the heap length hits an all-zero
        // descriptor (owner 0 -> remote path -> zero counter) and is
        // rejected by the counter check.
        // Loading the owner from our own cache without flushing is safe:
        // the four-case analysis of §3.2.2.
        let header = self.header(ctx, slab);
        if header.owner == ctx.tid.raw() {
            self.free_local(ctx, slab, header, offset)
        } else {
            self.free_remote(ctx, slab, offset)
        }
    }

    /// The unsynchronized local-free fast path.
    fn free_local(
        &self,
        ctx: &Ctx<'_>,
        slab: u32,
        header: SwccHeader,
        offset: u64,
    ) -> Result<(), AllocError> {
        let hl = self.hl(ctx.mem);
        let class = header.class;
        let block_size = self.classes.block_size(class) as u64;
        let within = offset - hl.slab_data_at(slab);
        if !within.is_multiple_of(block_size) {
            return Err(AllocError::NotAllocated { offset });
        }
        let bit = (within / block_size) as u32;
        let bits = self.bits(ctx, slab, class);
        if bits.get(ctx.core, bit) {
            return Err(AllocError::NotAllocated { offset }); // double free
        }
        ctx.log().begin(
            ctx.core,
            LogWord {
                op: self.op(Op::FreeLocal),
                a: slab,
                b: class,
                c: bit as u16,
            },
            &[],
        );
        ctx.crash_point("slab::free_local::after_log");
        let was_full = self.free_count(ctx, slab) == 0;
        bits.set(ctx.core, bit);
        let now_free = self.free_count(ctx, slab) + 1;
        self.set_free_count(ctx, slab, now_free);
        ctx.crash_point("slab::free_local::after_set");
        if was_full {
            // It was detached (full + owned + unlinked): re-link it.
            self.push_local(ctx, self.sized_head_off(ctx, class), slab);
        }
        let mut stayed_sized = true;
        if now_free == self.classes.blocks_per_slab(class) {
            // Fully empty. Hysteresis: when this is the *only* slab on
            // the thread's sized list for its class, keep it sized — the
            // next same-class allocation reuses it directly instead of
            // paying the unsized-push + full re-init cycle (header,
            // count, bitset `set_all`, HWcc counter, `InitSlab` log
            // record). Retention is bounded to one empty slab per
            // (thread, class): keeping requires a singleton list, and no
            // second slab joins while the retained one still has free
            // blocks. Recovery is untouched — `normalize_slab` still
            // maps a crashed empty slab to the unsized list, which is a
            // valid (paper Figure-4) state the next allocation handles.
            let alone = ctx.retain_empty
                && self.head_of(ctx, self.sized_head_off(ctx, class)) == Some(slab)
                && self.header(ctx, slab).next == 0;
            if !alone {
                // Move from the sized list to the unsized list.
                self.remove_local(ctx, self.sized_head_off(ctx, class), slab);
                let mut h = self.header(ctx, slab);
                h.class = 0;
                h.flags = 0;
                self.set_header(ctx, slab, h);
                self.push_local(ctx, self.unsized_head_off(ctx), slab);
                stayed_sized = false;
            }
        }
        ctx.crash_point("slab::free_local::after_relink");
        ctx.log().clear_relaxed(ctx.core);
        if stayed_sized {
            // The slab stayed sized and owned: hint the freed block to
            // the magazine so the next same-class alloc can skip the
            // bitset scan. (A slab demoted to the unsized list would
            // only produce a stale, discarded hint.)
            if let Some(mags) = ctx.magazines {
                mags.push(self.kind, class, slab, bit);
            }
            // Pull the rover back to the freed bit. Without this the
            // hint is pure next-fit: it marches past freed-behind
            // blocks until it falls off the end of the bitmap and the
            // wrap pass pays a full scan-from-zero — on a
            // fragmentation-adversarial shape that is every few
            // operations. With the pull-back the owner maintains
            // "no free bit below the rover" across *local* frees, so
            // `find_set_from` degenerates to exact first-fit at
            // one-word cost. Remote frees don't update the hint (the
            // freer doesn't own the shadow); the wrap pass in
            // `find_set_from` keeps those reachable.
            if let Some(shadow) = ctx.shadow {
                if ctx.rover && bit < shadow.rover(self.kind, slab) {
                    shadow.set_rover(ctx.mem, ctx.core, self.kind, slab, bit);
                }
            }
        }
        self.release_overflow(ctx);
        Ok(())
    }

    /// Releases unsized slabs beyond the configured threshold to the
    /// global free list.
    pub(crate) fn release_overflow(&self, ctx: &Ctx<'_>) {
        let head_off = self.unsized_head_off(ctx);
        while self.list_len(ctx, head_off, ctx.unsized_limit + 1) > ctx.unsized_limit {
            let Some(slab) = self.pop_local(ctx, head_off) else {
                return;
            };
            ctx.crash_point("slab::push_global::after_pop");
            self.push_global(ctx, slab);
        }
    }

    /// The remote-free path: decrement the HWcc counter with detectable
    /// (m)CAS; steal the slab if we reach zero.
    fn free_remote(&self, ctx: &Ctx<'_>, slab: u32, offset: u64) -> Result<(), AllocError> {
        // While this thread's combiner-request word names `slab`, frees
        // against it must bypass buffering: a durable `remote_buf`
        // record for the same slab would give the slab two durable batch
        // representations and recovery's dedup rule would double-count.
        let buffering_blocked = ctx
            .comb
            .is_some_and(|c| c.blocks_buffering(self.kind, slab));
        if ctx.remote_free_batch > 1 && !buffering_blocked {
            if let Some(buf) = ctx.remote {
                return self.free_remote_buffered(ctx, buf, slab, offset);
            }
        }
        let hl = self.hl(ctx.mem);
        let dcas = ctx.dcas();
        loop {
            let remote = dcas.read(ctx.core, hl.hwcc_desc_at(slab));
            if remote.payload == 0 {
                // Every block was already remotely freed; another free
                // into this slab is an application bug.
                return Err(AllocError::NotAllocated { offset });
            }
            let last = remote.payload == 1;
            let version = ctx.log().bump_version(ctx.core);
            ctx.log().begin(
                ctx.core,
                LogWord {
                    op: self.op(if last {
                        Op::RemoteFreeLast
                    } else {
                        Op::RemoteFree
                    }),
                    a: slab,
                    b: 0,
                    c: version,
                },
                &[],
            );
            ctx.crash_point("slab::remote_free::after_log");
            if dcas
                .attempt(
                    ctx.core,
                    hl.hwcc_desc_at(slab),
                    remote,
                    remote.payload - 1,
                    ctx.tid,
                    version,
                )
                .is_ok()
            {
                ctx.crash_point("slab::remote_free::after_cas");
                ctx.mem.trace_op(ctx.core, TraceKind::RemoteFreePublish, 1);
                if let Some(comb) = ctx.comb {
                    comb.note_publish();
                }
                if last {
                    self.steal(ctx, slab);
                }
                ctx.log().clear_relaxed(ctx.core);
                if last {
                    self.release_overflow(ctx);
                }
                return Ok(());
            }
            ctx.log().clear_relaxed(ctx.core);
            ctx.mem
                .note_cas_retry_at(cxl_pod::stats::CasRetrySite::RemotePublish);
            ctx.mem
                .trace_op(ctx.core, TraceKind::CasRetry, hl.hwcc_desc_at(slab));
            if let Some(comb) = ctx.comb {
                comb.note_retry();
            }
        }
    }

    /// The batched remote-free path: validate the free against the live
    /// counter, buffer it, and publish the whole batch with a single
    /// detectable CAS once the slab's entry reaches `remote_free_batch`.
    ///
    /// Every buffered free holds one of the counter's remaining credits,
    /// so the payload can never reach zero while frees sit in the buffer
    /// — no steal or slab reinitialization can race the buffered state.
    fn free_remote_buffered(
        &self,
        ctx: &Ctx<'_>,
        buf: &RemoteFreeBuffer,
        slab: u32,
        offset: u64,
    ) -> Result<(), AllocError> {
        let hl = self.hl(ctx.mem);
        let remote = ctx.dcas().read(ctx.core, hl.hwcc_desc_at(slab));
        // Double-free / wild-pointer parity with the eager path: the
        // payload must strictly exceed the already-buffered count for
        // one more free into this slab to be legal.
        let pending = buf.pending(self.kind, slab);
        if remote.payload <= pending {
            return Err(AllocError::NotAllocated { offset });
        }
        let (count, evicted) = buf.note(self.kind, slab);
        if let Some((vkind, vslab, vpending)) = evicted {
            SlabHeap::of(vkind).publish_remote_frees(ctx, vslab, vpending);
        }
        if count >= ctx.remote_free_batch {
            let k = buf.take(self.kind, slab);
            // The contention governor routes hot publishes through the
            // flat-combining path; quiet threads keep the direct CAS.
            // Combining needs recovery machinery (the request word is
            // resolved by crash recovery), so the nonrecoverable
            // ablation always publishes directly.
            if let Some(comb) = ctx.comb {
                if ctx.recoverable && comb.should_combine() {
                    return crate::comb::publish_combined(ctx, self, comb, slab, k);
                }
            }
            self.publish_remote_frees(ctx, slab, k);
        } else if ctx.recoverable {
            // Mirror the new pending count into the durable header line
            // so recovery can republish the batch if we die before the
            // publish. At the threshold the publish immediately clears
            // the word, so recording first would be wasted traffic.
            remote::durable::record(ctx, self.kind, slab, count);
        }
        Ok(())
    }

    /// Publishes `k` buffered remote frees against `slab` with one
    /// detectable CAS decrementing the HWcc counter by `k`. The batch
    /// width travels in the oplog record's `b` byte (`k` ≤ 255 by the
    /// `remote_free_batch` clamp) so recovery redoes exactly the
    /// undelivered decrement. `k` is capped at the live payload as a
    /// defense against application double-frees that were never
    /// buffered; a zero payload drops the batch the same way the eager
    /// path would have rejected each free.
    pub(crate) fn publish_remote_frees(&self, ctx: &Ctx<'_>, slab: u32, k: u32) {
        let hl = self.hl(ctx.mem);
        let dcas = ctx.dcas();
        loop {
            let remote = dcas.read(ctx.core, hl.hwcc_desc_at(slab));
            if remote.payload == 0 {
                // The batch is dropped, so its durable record must not
                // survive to be republished by a later recovery.
                if ctx.recoverable {
                    remote::durable::clear(ctx, self.kind, slab);
                }
                return;
            }
            let k_eff = k.min(remote.payload);
            let last = remote.payload == k_eff;
            let version = ctx.log().bump_version(ctx.core);
            ctx.log().begin(
                ctx.core,
                LogWord {
                    op: self.op(if last {
                        Op::RemoteFreeLast
                    } else {
                        Op::RemoteFree
                    }),
                    a: slab,
                    b: k_eff as u8,
                    c: version,
                },
                &[],
            );
            ctx.crash_point("slab::remote_free::publish_after_log");
            // Durably retire the batch's header word *before* the CAS:
            // once the decrement can have landed, no recovery may
            // republish it. A crash in between is covered by the oplog
            // record just written — the logged redo applies the
            // decrement and recovery's scan skips this slab's word.
            if ctx.recoverable {
                remote::durable::clear(ctx, self.kind, slab);
            }
            if dcas
                .attempt(
                    ctx.core,
                    hl.hwcc_desc_at(slab),
                    remote,
                    remote.payload - k_eff,
                    ctx.tid,
                    version,
                )
                .is_ok()
            {
                ctx.crash_point("slab::remote_free::publish_after_cas");
                ctx.mem.note_remote_free_batched(k_eff as u64);
                ctx.mem
                    .trace_op(ctx.core, TraceKind::RemoteFreePublish, k_eff as u64);
                if let Some(comb) = ctx.comb {
                    comb.note_publish();
                }
                if last {
                    self.steal(ctx, slab);
                }
                ctx.log().clear_relaxed(ctx.core);
                if last {
                    self.release_overflow(ctx);
                }
                return;
            }
            ctx.log().clear_relaxed(ctx.core);
            ctx.mem
                .note_cas_retry_at(cxl_pod::stats::CasRetrySite::RemotePublish);
            ctx.mem
                .trace_op(ctx.core, TraceKind::CasRetry, hl.hwcc_desc_at(slab));
            if let Some(comb) = ctx.comb {
                comb.note_retry();
            }
        }
    }

    /// Steals a fully-remotely-freed slab (detached or disowned, hence
    /// unlinked) onto our unsized list. Safe without coordination: with
    /// the counter at zero there can be no further allocation from or
    /// deallocation to this slab (§3.1.1).
    pub(crate) fn steal(&self, ctx: &Ctx<'_>, slab: u32) {
        self.set_header(ctx, slab, SwccHeader {
            next: 0,
            owner: ctx.tid.raw(),
            class: 0,
            flags: 0,
        });
        self.set_free_count(ctx, slab, 0);
        ctx.crash_point("slab::remote_free::before_steal_push");
        self.push_local(ctx, self.unsized_head_off(ctx), slab);
    }

    // ---- introspection ------------------------------------------------------

    /// Bytes of HWcc memory currently in use by this heap (§5.2.1
    /// accounting).
    pub fn hwcc_bytes(&self, mem: &dyn PodMemory, core: CoreId) -> u64 {
        self.hl(mem).hwcc_bytes(self.len(mem, core))
    }

    /// Total data bytes mapped (heap length × slab size).
    pub fn mapped_bytes(&self, mem: &dyn PodMemory, core: CoreId) -> u64 {
        self.len(mem, core) as u64 * self.hl(mem).slab_size
    }
}
