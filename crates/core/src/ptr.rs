//! Offset pointers and thread identifiers.
//!
//! Traditional pointers are absolute virtual addresses and therefore
//! meaningless across processes. Cxlalloc follows the persistent-memory
//! tradition of *offset pointers* (paper §2.3): a pointer is a byte
//! offset into the shared segment, and every process places heap data at
//! consistent offsets (PC-S). Dereferencing goes through a process's
//! mapping view ([`cxl_pod::Process::resolve`]).

use std::fmt;
use std::num::NonZeroU16;

/// A cross-process pointer: a byte offset into the pod's shared segment.
///
/// `OffsetPtr` is plain data — it can be stored in shared memory, passed
/// between processes, and remains valid wherever the segment is mapped.
/// Offset `0` is reserved as null (the segment's offset 0 is metadata,
/// never application data, so no valid allocation can be there).
///
/// # Example
///
/// ```
/// use cxl_core::OffsetPtr;
///
/// let p = OffsetPtr::new(4096).unwrap();
/// assert_eq!(p.offset(), 4096);
/// assert_eq!(p.wrapping_add(8).offset(), 4104);
/// assert!(OffsetPtr::new(0).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OffsetPtr(u64);

impl OffsetPtr {
    /// Creates an offset pointer; returns `None` for the null offset 0.
    #[inline]
    pub fn new(offset: u64) -> Option<Self> {
        if offset == 0 {
            None
        } else {
            Some(OffsetPtr(offset))
        }
    }

    /// The raw segment offset.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0
    }

    /// Pointer arithmetic (wrapping, like raw pointers).
    #[inline]
    #[must_use]
    pub fn wrapping_add(self, bytes: u64) -> Self {
        OffsetPtr(self.0.wrapping_add(bytes))
    }

    /// Encodes to a u64 where 0 means null — the representation stored
    /// in shared data structures.
    #[inline]
    pub fn encode(ptr: Option<OffsetPtr>) -> u64 {
        ptr.map_or(0, |p| p.0)
    }

    /// Decodes from the shared representation.
    #[inline]
    pub fn decode(raw: u64) -> Option<OffsetPtr> {
        OffsetPtr::new(raw)
    }
}

impl fmt::Display for OffsetPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:#x}", self.0)
    }
}

/// A registered allocator thread's identity.
///
/// Thread IDs are 16-bit and 1-based: the all-zero heap must be valid
/// (paper §4), and `SWccDesc.owner == 0` means "no owner", so real
/// threads start at 1. A `ThreadId` indexes per-thread metadata via
/// [`ThreadId::slot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(NonZeroU16);

impl ThreadId {
    /// Creates a thread id; returns `None` for 0 (the "no owner" value).
    #[inline]
    pub fn new(raw: u16) -> Option<Self> {
        NonZeroU16::new(raw).map(ThreadId)
    }

    /// The raw 16-bit value as stored in shared metadata.
    #[inline]
    pub fn raw(self) -> u16 {
        self.0.get()
    }

    /// Zero-based index into per-thread metadata arrays.
    #[inline]
    pub fn slot(self) -> u32 {
        (self.0.get() - 1) as u32
    }

    /// Builds the id owning metadata slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot + 1` overflows 16 bits.
    #[inline]
    pub fn from_slot(slot: u32) -> Self {
        ThreadId(NonZeroU16::new(u16::try_from(slot + 1).expect("slot fits u16")).expect("nonzero"))
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread{}", self.0.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_offset_is_rejected() {
        assert!(OffsetPtr::new(0).is_none());
        assert_eq!(OffsetPtr::encode(None), 0);
        assert_eq!(OffsetPtr::decode(0), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = OffsetPtr::new(777).unwrap();
        assert_eq!(OffsetPtr::decode(OffsetPtr::encode(Some(p))), Some(p));
    }

    #[test]
    fn arithmetic() {
        let p = OffsetPtr::new(100).unwrap();
        assert_eq!(p.wrapping_add(28).offset(), 128);
    }

    #[test]
    fn thread_id_slots_are_zero_based() {
        let t = ThreadId::new(1).unwrap();
        assert_eq!(t.slot(), 0);
        assert_eq!(ThreadId::from_slot(0), t);
        assert_eq!(ThreadId::from_slot(41).raw(), 42);
        assert!(ThreadId::new(0).is_none());
    }

    #[test]
    fn display() {
        assert_eq!(ThreadId::new(3).unwrap().to_string(), "thread3");
        assert_eq!(OffsetPtr::new(255).unwrap().to_string(), "@0xff");
    }
}
