//! Crash-point injection.
//!
//! Partial failure is the paper's third challenge: a thread may crash
//! *inside* an allocator function (OOM killer, bug) and the allocator
//! must neither block live threads nor lose memory. The paper validates
//! this with "white-box tests with defined thread crash points" (§5.1);
//! this module provides those crash points.
//!
//! Allocator code calls [`point`] at every interesting place. Normally it
//! is a single thread-local check. A test arms a [`CrashPlan`] on the
//! victim thread; when the named point is reached the thread unwinds with
//! a [`CrashSignal`] panic, leaving all shared state exactly as the
//! crash would — the harness catches the unwind, marks the thread dead,
//! and later exercises recovery.

use std::cell::Cell;
use std::collections::HashMap;

thread_local! {
    static PLAN: Cell<Option<CrashPlan>> = const { Cell::new(None) };
}

/// A scheduled crash for the current thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// The crash point label to trigger at.
    pub at: &'static str,
    /// How many times the point is passed before crashing (0 = first
    /// encounter).
    pub skip: u32,
}

/// The panic payload used for injected crashes, so harnesses can
/// distinguish them from real bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSignal {
    /// The crash point that fired.
    pub at: &'static str,
}

/// Arms a crash plan on the calling thread. Replaces any existing plan.
pub fn arm(plan: CrashPlan) {
    PLAN.with(|p| p.set(Some(plan)));
}

/// Disarms the calling thread's crash plan.
pub fn disarm() {
    PLAN.with(|p| p.set(None));
}

/// Whether a plan is currently armed on this thread.
pub fn armed() -> bool {
    PLAN.with(|p| p.get().is_some())
}

/// A crash point. Panics with [`CrashSignal`] when the armed plan names
/// `label` (after `skip` prior encounters); otherwise a near-free check.
#[inline]
pub fn point(label: &'static str) {
    PLAN.with(|p| {
        if let Some(mut plan) = p.get() {
            if plan.at == label {
                if plan.skip == 0 {
                    p.set(None);
                    std::panic::panic_any(CrashSignal { at: label });
                }
                plan.skip -= 1;
                p.set(Some(plan));
            }
        }
    });
}

/// Runs `f`, converting an injected crash into `Err(CrashSignal)`.
/// Non-crash panics are propagated.
pub fn catch<T>(f: impl FnOnce() -> T + std::panic::UnwindSafe) -> Result<T, CrashSignal> {
    match std::panic::catch_unwind(f) {
        Ok(v) => Ok(v),
        Err(payload) => match payload.downcast::<CrashSignal>() {
            Ok(signal) => Err(*signal),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

/// Collects the crash-point labels compiled into the allocator, by
/// module, for white-box test enumeration. Kept in sync by the
/// `crash_points` test in each module.
pub fn known_points() -> HashMap<&'static str, &'static [&'static str]> {
    let mut map: HashMap<&'static str, &'static [&'static str]> = HashMap::new();
    map.insert("slab", crate::slab::CRASH_POINTS);
    map.insert("huge", crate::huge::CRASH_POINTS);
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_point_is_noop() {
        disarm();
        point("anything");
    }

    #[test]
    fn armed_point_crashes_once() {
        arm(CrashPlan {
            at: "here",
            skip: 0,
        });
        let r = catch(|| {
            point("elsewhere"); // does not fire
            point("here"); // fires
            unreachable!()
        });
        assert_eq!(r, Err(CrashSignal { at: "here" }));
        // The plan disarms on fire.
        assert!(!armed());
        point("here"); // no longer crashes
    }

    #[test]
    fn skip_counts_encounters() {
        arm(CrashPlan {
            at: "loop",
            skip: 2,
        });
        let r = catch(|| {
            let mut passed = 0;
            for _ in 0..10 {
                point("loop");
                passed += 1;
            }
            passed
        });
        assert!(r.is_err());
        disarm();
    }

    #[test]
    fn real_panics_propagate() {
        let result = std::panic::catch_unwind(|| catch(|| panic!("real bug")));
        assert!(result.is_err());
    }

    #[test]
    fn plans_are_thread_local() {
        arm(CrashPlan {
            at: "x",
            skip: 0,
        });
        std::thread::spawn(|| {
            assert!(!armed());
            point("x"); // other thread unaffected
        })
        .join()
        .unwrap();
        disarm();
    }
}
