//! Deterministic multi-host schedule driver.
//!
//! The paper validates cxlalloc with white-box crash points and
//! black-box random crashes (§5.1). This module generalizes both into
//! *schedules*: explicit sequences of allocator operations across N
//! simulated hosts, each host a registered thread pinned to its own
//! core of one simulated pod. A [`Schedule`] is either written by hand
//! or generated from a 64-bit seed ([`Schedule::generate`]), and the
//! driver ([`run`]) executes it step by step on a single OS thread —
//! so every run of the same `(config, schedule, fault plan)` triple
//! performs the identical sequence of memory operations and returns
//! the identical [`RunReport::fingerprint`].
//!
//! Sub-operation granularity comes from [`crash::point`] labels:
//! [`Step::Crash`] arms a [`CrashPlan`] (e.g. "crash host 2 at
//! `slab::push_global::after_cas`, third encounter") and drives a
//! churn workload into it; the host's thread dies mid-operation,
//! losing its simulated cache, and a later [`Step::Recover`] adopts it
//! from another host. Pod-level misbehaviour (dropped flushes, mCAS
//! contention, …) is scripted separately through a [`FaultPlan`] of
//! [`cxl_pod::fault::FaultRule`]s.
//!
//! The driver is the substrate for the schedule-exploration harness in
//! [`crate::explore`], which randomizes seeds, checks
//! [`crate::invariants::check`] plus full recovery after every run,
//! and shrinks failing schedules to minimal reproducers.

use crate::crash::{self, CrashPlan};
use crate::error::AllocError;
use crate::{AttachOptions, Cxlalloc, OffsetPtr, ThreadHandle, ThreadId};
use cxl_pod::fault::FaultRule;
use cxl_pod::{CoreId, FabricConfig, HwccMode, Pod, PodConfig, SimMemory};
use rand::{Rng, SeedableRng};

/// One step of a schedule, executed atomically (at operation
/// granularity) by the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Host allocates `size` bytes and keeps the pointer. Skipped when
    /// the host is crashed or its live set is at capacity; an
    /// out-of-memory result is recorded, not fatal.
    Alloc {
        /// Acting host.
        host: usize,
        /// Request size in bytes.
        size: usize,
    },
    /// Host frees the `index % live.len()`-th pointer of its live set.
    /// Skipped when the host is crashed or holds nothing.
    Dealloc {
        /// Acting host.
        host: usize,
        /// Index into the host's live set (reduced modulo its length).
        index: usize,
    },
    /// Host runs one huge-heap cleanup pass.
    Cleanup {
        /// Acting host.
        host: usize,
    },
    /// Host writes back and drops its entire simulated cache (a
    /// quiesce point).
    FlushCache {
        /// Acting host.
        host: usize,
    },
    /// Host crashes at the named [`crash::point`] label: a churn
    /// workload runs with a [`CrashPlan`] armed, and if the point is
    /// reached the host's thread dies there (its simulated cache is
    /// discarded). If the workload never passes the point the step
    /// degrades to plain churn.
    Crash {
        /// Acting host.
        host: usize,
        /// Crash-point label (one of the `CRASH_POINTS` lists).
        at: &'static str,
        /// Encounters of the label to let pass before dying.
        skip: u32,
    },
    /// `via` adopts crashed host `host`: recovery of the interrupted
    /// operation, registry takeover, and reconstruction of the
    /// volatile huge-heap state. Skipped when `host` is not crashed;
    /// if `via` is itself crashed, the lowest live host stands in.
    Recover {
        /// Crashed host to adopt.
        host: usize,
        /// Host performing the adoption.
        via: usize,
    },
    /// Host dies *silently*: its thread is gone (handle dropped, cache
    /// lost) but — unlike [`Step::Crash`] — nothing flips its registry
    /// slot, which stays LIVE until some survivor's
    /// [`Step::DetectorTick`] notices the stale lease. This is the
    /// failure mode the liveness layer exists for.
    StopHeartbeat {
        /// Acting host.
        host: usize,
    },
    /// Host runs one tick of its
    /// [`LivenessDetector`](crate::liveness::LivenessDetector), flipping
    /// any lease-expired slot LIVE→DEAD, then races to adopt every
    /// handle-less host whose slot is DEAD (self-healing).
    DetectorTick {
        /// Acting host.
        host: usize,
    },
    /// Arms a persistent device outage: the next `pairs` mCAS pairs
    /// anywhere on the NMP device bounce with contention results,
    /// exercising bounded backoff and (past the breaker threshold) the
    /// software-fallback CAS path. Only meaningful in
    /// [`HwccMode::None`]; a no-op fault plan otherwise.
    DeviceDegrade {
        /// Acting host (provenance only; the outage is device-wide).
        host: usize,
        /// Pairs to bounce.
        pairs: u32,
    },
}

impl Step {
    /// The host this step acts on.
    pub fn host(&self) -> usize {
        match *self {
            Step::Alloc { host, .. }
            | Step::Dealloc { host, .. }
            | Step::Cleanup { host }
            | Step::FlushCache { host }
            | Step::Crash { host, .. }
            | Step::Recover { host, .. }
            | Step::StopHeartbeat { host }
            | Step::DetectorTick { host }
            | Step::DeviceDegrade { host, .. } => host,
        }
    }
}

/// A deterministic schedule: a seed (provenance + replay handle) and
/// the explicit step list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// The seed this schedule was generated from (0 for hand-written
    /// schedules).
    pub seed: u64,
    /// Number of hosts the schedule addresses.
    pub hosts: usize,
    /// The steps, executed in order.
    pub steps: Vec<Step>,
}

impl Schedule {
    /// Generates the canonical random schedule for `seed`: `len` steps
    /// over `hosts` hosts, mixing allocation churn, crashes at random
    /// [`crash::point`] labels, and recoveries. The same seed always
    /// yields the byte-identical schedule.
    pub fn generate(seed: u64, hosts: usize, len: usize) -> Schedule {
        assert!(hosts > 0, "a schedule needs at least one host");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let slab_points = crate::slab::CRASH_POINTS;
        let huge_points = crate::huge::CRASH_POINTS;
        let steps = (0..len)
            .map(|_| {
                let host = rng.gen_range(0..hosts);
                match rng.gen_range(0..100u32) {
                    0..=44 => Step::Alloc {
                        host,
                        size: Self::pick_size(&mut rng),
                    },
                    45..=71 => Step::Dealloc {
                        host,
                        index: rng.gen_range(0..1024usize),
                    },
                    72..=77 => Step::Cleanup { host },
                    78..=83 => Step::FlushCache { host },
                    84..=93 => {
                        let at = if rng.gen_range(0..4u32) == 0 {
                            huge_points[rng.gen_range(0..huge_points.len())]
                        } else {
                            slab_points[rng.gen_range(0..slab_points.len())]
                        };
                        Step::Crash {
                            host,
                            at,
                            skip: rng.gen_range(0..6u32),
                        }
                    }
                    _ => Step::Recover {
                        host,
                        via: rng.gen_range(0..hosts),
                    },
                }
            })
            .collect();
        Schedule { seed, hosts, steps }
    }

    /// Generates the canonical *liveness* schedule for `seed`: the
    /// classic churn/crash mix of [`Schedule::generate`] plus silent
    /// host hangs ([`Step::StopHeartbeat`]), detector ticks
    /// ([`Step::DetectorTick`]), and device outages
    /// ([`Step::DeviceDegrade`]). Kept separate from `generate` so
    /// existing seeds replay byte-identically.
    pub fn generate_liveness(seed: u64, hosts: usize, len: usize) -> Schedule {
        assert!(hosts > 0, "a schedule needs at least one host");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let slab_points = crate::slab::CRASH_POINTS;
        let huge_points = crate::huge::CRASH_POINTS;
        let steps = (0..len)
            .map(|_| {
                let host = rng.gen_range(0..hosts);
                match rng.gen_range(0..100u32) {
                    0..=38 => Step::Alloc {
                        host,
                        size: Self::pick_size(&mut rng),
                    },
                    39..=59 => Step::Dealloc {
                        host,
                        index: rng.gen_range(0..1024usize),
                    },
                    60..=63 => Step::Cleanup { host },
                    64..=67 => Step::FlushCache { host },
                    68..=73 => {
                        let at = if rng.gen_range(0..4u32) == 0 {
                            huge_points[rng.gen_range(0..huge_points.len())]
                        } else {
                            slab_points[rng.gen_range(0..slab_points.len())]
                        };
                        Step::Crash {
                            host,
                            at,
                            skip: rng.gen_range(0..6u32),
                        }
                    }
                    74..=79 => Step::Recover {
                        host,
                        via: rng.gen_range(0..hosts),
                    },
                    80..=85 => Step::StopHeartbeat { host },
                    86..=95 => Step::DetectorTick { host },
                    _ => Step::DeviceDegrade {
                        host,
                        pairs: rng.gen_range(8..=24u32),
                    },
                }
            })
            .collect();
        Schedule { seed, hosts, steps }
    }

    /// Request-size distribution: mostly small blocks, some large, the
    /// occasional huge mapping.
    fn pick_size(rng: &mut rand::rngs::StdRng) -> usize {
        match rng.gen_range(0..100u32) {
            0..=69 => rng.gen_range(8..=1024usize),
            70..=94 => rng.gen_range(2048..=8192usize),
            _ => rng.gen_range(1..=2usize) << 20,
        }
    }
}

/// Pod-level fault script applied before a run: each rule is armed on
/// the simulated backend's [`FaultInjector`](cxl_pod::fault::FaultInjector),
/// reaching both the cache/flush hooks and the NMP device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The rules, armed in order.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan of the given rules.
    pub fn of(rules: Vec<FaultRule>) -> Self {
        FaultPlan { rules }
    }
}

/// Driver configuration: pod shape and per-host limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of simulated hosts (each one registered thread on its
    /// own core of one shared pod).
    pub hosts: usize,
    /// Coherence mode of the simulated pod.
    pub mode: HwccMode,
    /// Per-host cap on simultaneously live allocations (keeps random
    /// schedules inside the test pod's capacity).
    pub live_cap: usize,
    /// Consecutive [`Step::DetectorTick`]s (of one host's detector)
    /// without a lease renewal before a LIVE slot is declared dead.
    pub lease_expiry_ticks: u32,
    /// Remote-free batch width passed to [`AttachOptions`]; 1 (the
    /// default) keeps the paper's eager per-free publish.
    pub remote_free_batch: u32,
    /// Magazine capacity passed to [`AttachOptions`]; 0 (the default)
    /// disables magazines.
    pub magazine_capacity: u32,
    /// Fence coalescing passed to [`AttachOptions`].
    pub coalesce_fences: bool,
    /// Fabric contention model for the pod ([`cxl_pod::fabric`]):
    /// `None` (the default) builds the pod with a disabled fabric,
    /// keeping every classic schedule cost-identical to pre-fabric
    /// builds. Fabric delays never reach the schedule fingerprint
    /// (which hashes outcomes and offsets, not latencies), so a
    /// congested run's *structural* determinism is checked against the
    /// same pins — its *cost* determinism is pinned separately via the
    /// congested trace-stream fingerprint.
    pub fabric: Option<FabricConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            hosts: 2,
            mode: HwccMode::Limited,
            live_cap: 48,
            lease_expiry_ticks: 3,
            remote_free_batch: 1,
            magazine_capacity: 0,
            coalesce_fences: false,
            fabric: None,
        }
    }
}

impl SimConfig {
    /// The pod configuration schedule runs use; public so callers of
    /// [`run_on`] can build the identical pod themselves.
    pub fn pod_config(&self) -> PodConfig {
        PodConfig {
            small_max_slabs: 256,
            huge_capacity: 16 << 20,
            ..PodConfig::small_for_tests()
        }
    }
}

/// What a completed run did, plus its determinism fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// FNV-1a hash over every step outcome and allocated offset. Two
    /// runs of the same `(config, schedule, plan)` triple produce the
    /// same fingerprint; use it to assert byte-identical replay.
    pub fingerprint: u64,
    /// Steps executed (always the schedule length).
    pub steps: usize,
    /// Successful allocations (schedule steps only, not crash churn).
    pub allocs: u64,
    /// Successful deallocations (schedule steps only).
    pub deallocs: u64,
    /// Crash steps whose crash point actually fired.
    pub crashes_fired: u64,
    /// Crash steps whose workload never reached the point.
    pub crashes_missed: u64,
    /// Adoptions performed (in-schedule and end-of-run).
    pub recoveries: u64,
    /// Hosts that silently stopped heartbeating ([`Step::StopHeartbeat`]
    /// on a live host).
    pub hangs: u64,
    /// Threads declared dead by detector ticks (lease expiry).
    pub detections: u64,
    /// Device outages armed ([`Step::DeviceDegrade`]).
    pub degrades: u64,
    /// Faults the pod injector reported injecting during the run.
    pub faults_injected: u64,
}

/// Why a run failed: the failing step (if attributable) and the
/// violated property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleFailure {
    /// Index of the failing step, or `None` for end-of-run validation
    /// failures.
    pub step: Option<usize>,
    /// Description of the failure.
    pub message: String,
}

impl std::fmt::Display for ScheduleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.step {
            Some(i) => write!(f, "step {i}: {}", self.message),
            None => write!(f, "end-of-run: {}", self.message),
        }
    }
}

/// FNV-1a accumulator for the replay fingerprint.
struct Fingerprint(u64);

impl Fingerprint {
    fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    fn mix(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn tag(&mut self, tag: &str) {
        for byte in tag.as_bytes() {
            self.0 ^= *byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// One simulated host: its process's heap handle, its registered
/// thread (absent while crashed or hung), the allocations it holds,
/// and its private liveness-detector state.
struct Host {
    heap: Cxlalloc,
    handle: Option<ThreadHandle>,
    tid: ThreadId,
    live: Vec<OffsetPtr>,
    /// Set by [`Step::StopHeartbeat`]: the thread is gone but its
    /// registry slot is still LIVE until a detector (or end-of-run
    /// cleanup) declares it dead.
    hung: bool,
    detector: crate::liveness::LivenessDetector,
}

/// Runs `schedule` under `plan` on a fresh pod, then performs full
/// end-of-run validation: every crashed host is recovered and adopted,
/// all remaining allocations are freed, caches are quiesced, and
/// [`crate::invariants::check`] must pass.
///
/// # Errors
///
/// Returns a [`ScheduleFailure`] naming the first violated property:
/// an allocator error that cannot occur in a correct heap (wild or
/// double free), an allocator panic, a failed recovery, or an
/// invariant violation at the end.
///
/// # Panics
///
/// Panics if `schedule.hosts` exceeds the pod's thread capacity.
///
/// # Examples
///
/// Replay a hand-written two-host schedule with a scripted crash; the
/// report's fingerprint pins the run for byte-identical replay:
///
/// ```
/// use cxl_core::sched::{self, FaultPlan, Schedule, SimConfig, Step};
///
/// let schedule = Schedule {
///     seed: 0, // hand-written, not generated
///     hosts: 2,
///     steps: vec![
///         Step::Alloc { host: 0, size: 64 },
///         Step::Alloc { host: 1, size: 128 },
///         Step::Crash { host: 1, at: "slab::push_global::after_cas", skip: 0 },
///         Step::Recover { host: 1, via: 0 },
///     ],
/// };
/// let config = SimConfig::default();
/// let report = sched::run(&config, &schedule, &FaultPlan::none())?;
/// assert_eq!(report.recoveries, 1);
/// let replay = sched::run(&config, &schedule, &FaultPlan::none())?;
/// assert_eq!(report.fingerprint, replay.fingerprint);
/// # Ok::<(), cxl_core::sched::ScheduleFailure>(())
/// ```
pub fn run(
    config: &SimConfig,
    schedule: &Schedule,
    plan: &FaultPlan,
) -> Result<RunReport, ScheduleFailure> {
    let pod = match config.fabric {
        Some(fabric) => Pod::with_simulation_fabric(config.pod_config(), config.mode, fabric),
        None => Pod::with_simulation(config.pod_config(), config.mode),
    }
    .expect("test pod config must be valid");
    run_on(&pod, config, schedule, plan)
}

/// [`run`] over a caller-built simulated pod: lets the caller arm
/// backend observers before the run — notably the [`cxl_pod::trace`]
/// tracer, whose replay determinism is tested this way — or inspect
/// backend state afterwards.
///
/// # Errors
///
/// Same as [`run`].
///
/// # Panics
///
/// Panics if `pod` is not simulation-backed or too small for
/// `schedule.hosts`.
pub fn run_on(
    pod: &Pod,
    config: &SimConfig,
    schedule: &Schedule,
    plan: &FaultPlan,
) -> Result<RunReport, ScheduleFailure> {
    if !plan.rules.is_empty() {
        let sim = pod
            .memory()
            .as_any()
            .downcast_ref::<SimMemory>()
            .expect("simulated pods back schedules");
        for rule in &plan.rules {
            sim.faults().push(*rule);
        }
    }

    let mut hosts: Vec<Host> = (0..schedule.hosts)
        .map(|_| {
            let heap = Cxlalloc::attach(
                pod.spawn_process(),
                AttachOptions {
                    unsized_limit: 1,
                    remote_free_batch: config.remote_free_batch,
                    magazine_capacity: config.magazine_capacity,
                    coalesce_fences: config.coalesce_fences,
                    ..AttachOptions::default()
                },
            )
            .expect("attach cannot fail on a fresh pod");
            let handle = heap.register_thread().expect("schedule hosts fit the pod");
            let tid = handle.tid();
            Host {
                heap,
                handle: Some(handle),
                tid,
                live: Vec::new(),
                hung: false,
                detector: crate::liveness::LivenessDetector::new(
                    pod.layout().max_threads,
                    config.lease_expiry_ticks,
                ),
            }
        })
        .collect();

    let mut fp = Fingerprint::new();
    let mut report = RunReport {
        fingerprint: 0,
        steps: 0,
        allocs: 0,
        deallocs: 0,
        crashes_fired: 0,
        crashes_missed: 0,
        recoveries: 0,
        hangs: 0,
        detections: 0,
        degrades: 0,
        faults_injected: 0,
    };

    for (i, step) in schedule.steps.iter().enumerate() {
        fp.mix(i as u64);
        // Every live host renews its lease before each step — the
        // deterministic analogue of a periodic heartbeat timer. Hosts
        // without a handle (crashed or hung) silently miss renewals and
        // age toward lease expiry.
        let beat = guard(|| {
            for (h, host) in hosts.iter().enumerate() {
                if let Some(handle) = host.handle.as_ref() {
                    handle
                        .heartbeat()
                        .map_err(|e| format!("heartbeat of host {h}: {e}"))?;
                }
            }
            Ok::<(), String>(())
        });
        match beat {
            Ok(Ok(())) => {}
            Ok(Err(message)) | Err(message) => {
                return Err(ScheduleFailure {
                    step: Some(i),
                    message,
                });
            }
        }
        let outcome = guard(|| exec_step(config, &mut hosts, *step, &mut fp, &mut report));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(message)) | Err(message) => {
                return Err(ScheduleFailure {
                    step: Some(i),
                    message,
                });
            }
        }
        report.steps += 1;
    }

    // End of run: recover every crashed host, drain all live
    // allocations, quiesce, and validate.
    finish(&mut hosts, &mut fp, &mut report).map_err(|message| ScheduleFailure {
        step: None,
        message,
    })?;

    report.faults_injected = pod.memory().stats().faults_injected;
    fp.mix(report.faults_injected);
    report.fingerprint = fp.0;
    Ok(report)
}

/// Converts a non-crash panic inside `f` into an error message (crash
/// signals never escape `exec_step`, so anything caught here is an
/// allocator bug).
fn guard<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => Err(panic_message(payload)),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("allocator panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("allocator panicked: {s}")
    } else {
        "allocator panicked".to_string()
    }
}

fn exec_step(
    config: &SimConfig,
    hosts: &mut [Host],
    step: Step,
    fp: &mut Fingerprint,
    report: &mut RunReport,
) -> Result<(), String> {
    let host_index = step.host() % hosts.len();
    match step {
        Step::Alloc { size, .. } => {
            let host = &mut hosts[host_index];
            let Some(handle) = host.handle.as_mut() else {
                fp.tag("dead");
                return Ok(());
            };
            if host.live.len() >= config.live_cap {
                fp.tag("full");
                return Ok(());
            }
            match handle.alloc(size) {
                Ok(ptr) => {
                    fp.tag("alloc");
                    fp.mix(ptr.offset());
                    host.live.push(ptr);
                    report.allocs += 1;
                }
                Err(AllocError::OutOfMemory { .. }) => fp.tag("oom"),
                Err(e) => return Err(format!("alloc({size}) on host {host_index}: {e}")),
            }
        }
        Step::Dealloc { index, .. } => {
            let host = &mut hosts[host_index];
            let Some(handle) = host.handle.as_mut() else {
                fp.tag("dead");
                return Ok(());
            };
            if host.live.is_empty() {
                fp.tag("empty");
                return Ok(());
            }
            let ptr = host.live.swap_remove(index % host.live.len());
            handle
                .dealloc(ptr)
                .map_err(|e| format!("dealloc({:#x}) on host {host_index}: {e}", ptr.offset()))?;
            fp.tag("free");
            fp.mix(ptr.offset());
            report.deallocs += 1;
        }
        Step::Cleanup { .. } => {
            let host = &mut hosts[host_index];
            if let Some(handle) = host.handle.as_mut() {
                let reclaimed = handle.cleanup();
                fp.tag("cleanup");
                fp.mix(reclaimed as u64);
            } else {
                fp.tag("dead");
            }
        }
        Step::FlushCache { .. } => {
            let host = &hosts[host_index];
            if let Some(handle) = host.handle.as_ref() {
                handle.flush_cache();
                fp.tag("flush");
            } else {
                fp.tag("dead");
            }
        }
        Step::Crash { at, skip, .. } => {
            let host = &mut hosts[host_index];
            let Some(mut handle) = host.handle.take() else {
                fp.tag("dead");
                return Ok(());
            };
            crash::arm(CrashPlan { at, skip });
            let churned = crash::catch(std::panic::AssertUnwindSafe(|| churn(&mut handle)));
            crash::disarm();
            match churned {
                Err(signal) => {
                    // The thread died inside the allocator: discard its
                    // handle, lose its cache, mark it dead.
                    fp.tag("crash");
                    fp.tag(signal.at);
                    drop(handle);
                    host.heap
                        .mark_crashed(host.tid)
                        .map_err(|e| format!("mark_crashed host {host_index}: {e}"))?;
                    // The crash lost the host's cache, so allocations
                    // whose metadata was never flushed are durably
                    // rolled back by recovery. Tracked pointers can no
                    // longer be assumed allocated (a rolled-back block
                    // may be handed out again); forget them.
                    fp.mix(host.live.len() as u64);
                    host.live.clear();
                    report.crashes_fired += 1;
                }
                Ok(churn_result) => {
                    // The workload never reached the point: the host
                    // survives (plain churn).
                    host.handle = Some(handle);
                    churn_result?;
                    fp.tag("nocrash");
                    report.crashes_missed += 1;
                }
            }
        }
        Step::Recover { via, .. } => {
            let host_tid = {
                let host = &hosts[host_index];
                if host.handle.is_some() {
                    fp.tag("alive");
                    return Ok(());
                }
                if host.hung {
                    // The host died silently and no detector has flipped
                    // its slot yet: it is not adoptable (registry still
                    // LIVE). A DetectorTick has to find it first.
                    let mem = host.heap.process().memory();
                    let state = mem.load_u64(
                        CoreId(host.tid.slot() as u16),
                        mem.layout().registry_at(host.tid.slot()),
                    );
                    if state == crate::liveness::registry::LIVE {
                        fp.tag("undetected");
                        return Ok(());
                    }
                }
                host.tid
            };
            // Adopt through `via` if it is live, else the lowest live
            // host; with no live host left, end-of-run recovery will
            // handle it.
            let via_index = std::iter::once(via % hosts.len())
                .chain(0..hosts.len())
                .find(|&i| i != host_index && hosts[i].handle.is_some());
            let Some(via_index) = via_index else {
                fp.tag("norescuer");
                return Ok(());
            };
            let via_core = hosts[via_index].handle.as_ref().expect("live").core();
            let (handle, rep) = hosts[via_index]
                .heap
                .adopt(host_tid, via_core)
                .map_err(|e| format!("adopt host {host_index} via {via_index}: {e}"))?;
            fp.tag("recover");
            fp.tag(rep.outcome);
            hosts[host_index].handle = Some(handle);
            hosts[host_index].hung = false;
            report.recoveries += 1;
        }
        Step::StopHeartbeat { .. } => {
            let host = &mut hosts[host_index];
            let Some(handle) = host.handle.take() else {
                fp.tag("dead");
                return Ok(());
            };
            // The host dies silently: thread and cache are gone, but
            // nothing flips its registry slot — only a detector's lease
            // scan can discover this.
            drop(handle);
            if let Some(sim) = host
                .heap
                .process()
                .memory()
                .as_any()
                .downcast_ref::<SimMemory>()
            {
                sim.cache().discard_all(host.tid.slot() as usize);
            }
            host.hung = true;
            fp.tag("hang");
            // Same reasoning as a crash: unflushed metadata will be
            // rolled back by eventual recovery, so tracked pointers can
            // no longer be assumed allocated.
            fp.mix(host.live.len() as u64);
            host.live.clear();
            report.hangs += 1;
        }
        Step::DetectorTick { .. } => {
            let Some(via_core) = hosts[host_index].handle.as_ref().map(|h| h.core()) else {
                fp.tag("dead");
                return Ok(());
            };
            let tick = {
                let host = &mut hosts[host_index];
                let heap = host.heap.clone();
                host.detector
                    .tick(&heap, via_core)
                    .map_err(|e| format!("detector tick on host {host_index}: {e}"))?
            };
            fp.tag("tick");
            fp.mix(tick.expired.len() as u64);
            for tid in &tick.expired {
                fp.mix(tid.raw() as u64);
            }
            report.detections += tick.expired.len() as u64;
            // Self-healing: the ticking host races to adopt every
            // handle-less host whose slot is now DEAD (whether this
            // tick flipped it or an earlier one did).
            let heap = hosts[host_index].heap.clone();
            for (j, other) in hosts.iter_mut().enumerate() {
                if j == host_index || other.handle.is_some() {
                    continue;
                }
                let tid = other.tid;
                let mem = heap.process().memory();
                if mem.load_u64(via_core, mem.layout().registry_at(tid.slot()))
                    != crate::liveness::registry::DEAD
                {
                    continue;
                }
                match heap.try_adopt(tid, via_core) {
                    Ok((handle, rep)) => {
                        fp.tag("adopt");
                        fp.tag(rep.outcome);
                        other.handle = Some(handle);
                        other.hung = false;
                        report.recoveries += 1;
                    }
                    // Impossible single-threaded, but the typed loser
                    // path must not fail the run.
                    Err(AllocError::AdoptionRaced { .. }) => fp.tag("raced"),
                    Err(e) => return Err(format!("adopt of host {j} after tick: {e}")),
                }
            }
        }
        Step::DeviceDegrade { pairs, .. } => {
            let host = &hosts[host_index];
            let sim = host
                .heap
                .process()
                .memory()
                .as_any()
                .downcast_ref::<SimMemory>()
                .expect("simulated pods back schedules");
            sim.faults()
                .push(cxl_pod::fault::FaultRule::device_outage(pairs as u64));
            fp.tag("degrade");
            fp.mix(pairs as u64);
            report.degrades += 1;
        }
    }
    Ok(())
}

/// The workload a [`Step::Crash`] drives into its crash point: local
/// churn with remote-ish pressure (tight unsized limit pushes slabs to
/// the global list) plus one huge alloc/free/cleanup round, so every
/// `CRASH_POINTS` label is reachable.
fn churn(handle: &mut ThreadHandle) -> Result<(), String> {
    let mut scratch = Vec::with_capacity(2560);
    // A same-size batch large enough to fill (and detach/unlink) several
    // whole slabs, so the slab-full paths are reachable and — with
    // empty-slab hysteresis retaining the last emptied slab per class —
    // multiple emptied slabs still reach the unsized list and overflow
    // it (tight limit), keeping the `push_global` labels live at the
    // deeper skip counts schedules ask for.
    for _ in 0..2400usize {
        match handle.alloc(64) {
            Ok(p) => scratch.push(p),
            Err(AllocError::OutOfMemory { .. }) => break,
            Err(e) => return Err(format!("churn alloc: {e}")),
        }
    }
    for i in 0..160usize {
        match handle.alloc(8 + (i * 13) % 1000) {
            Ok(p) => scratch.push(p),
            Err(AllocError::OutOfMemory { .. }) => break,
            Err(e) => return Err(format!("churn alloc: {e}")),
        }
    }
    for p in scratch {
        handle.dealloc(p).map_err(|e| format!("churn dealloc: {e}"))?;
    }
    // Everything is free: surplus slabs overflowed to the global list
    // (tight unsized limit). A second wave — deep enough to outgrow the
    // retained slab plus the unsized list — pops them back off it.
    let mut again = Vec::with_capacity(2560);
    for _ in 0..2400usize {
        match handle.alloc(64) {
            Ok(p) => again.push(p),
            Err(AllocError::OutOfMemory { .. }) => break,
            Err(e) => return Err(format!("churn alloc: {e}")),
        }
    }
    for p in again {
        handle.dealloc(p).map_err(|e| format!("churn dealloc: {e}"))?;
    }
    // A detectable round: the allocator delivers the pointer into a heap
    // cell the application names, exercising the delivery crash window
    // (`slab::alloc_block::after_deliver`).
    match handle.alloc(8) {
        Ok(cell) => {
            let p = handle
                .alloc_detectable(64, cell)
                .map_err(|e| format!("churn detectable alloc: {e}"))?;
            handle
                .dealloc(p)
                .map_err(|e| format!("churn dealloc: {e}"))?;
            handle
                .dealloc(cell)
                .map_err(|e| format!("churn dealloc: {e}"))?;
        }
        Err(AllocError::OutOfMemory { .. }) => {}
        Err(e) => return Err(format!("churn alloc: {e}")),
    }
    match handle.alloc(1 << 20) {
        Ok(p) => {
            handle
                .dealloc(p)
                .map_err(|e| format!("churn huge dealloc: {e}"))?;
            handle.cleanup();
        }
        Err(AllocError::OutOfMemory { .. }) => {}
        Err(e) => return Err(format!("churn huge alloc: {e}")),
    }
    Ok(())
}

/// End-of-run validation: adopt every crashed host, free everything,
/// quiesce all caches, and check every heap invariant.
fn finish(hosts: &mut [Host], fp: &mut Fingerprint, report: &mut RunReport) -> Result<(), String> {
    // Hung hosts whose lease never expired in-schedule are still LIVE in
    // the registry: declare them dead so adoption below can proceed —
    // the cleanup a detector would eventually have performed.
    for (i, host) in hosts.iter_mut().enumerate() {
        if !host.hung || host.handle.is_some() {
            continue;
        }
        let flipped = guard(|| host.heap.declare_dead(host.tid))
            .map_err(|m| format!("declaring hung host {i} dead panicked: {m}"))?
            .map_err(|e| format!("declaring hung host {i} dead: {e}"))?;
        fp.tag("final-declare");
        fp.mix(flipped as u64);
        host.hung = false;
    }
    for (i, host) in hosts.iter_mut().enumerate() {
        if host.handle.is_some() {
            continue;
        }
        let tid = host.tid;
        // Adopt via the host's own (discarded, therefore clean) core:
        // works even when every host crashed.
        let via = CoreId(tid.slot() as u16);
        let (handle, rep) = guard(|| host.heap.adopt(tid, via))
            .map_err(|m| format!("recovery of host {i} panicked: {m}"))?
            .map_err(|e| format!("end-of-run recovery of host {i}: {e}"))?;
        fp.tag("final-recover");
        fp.tag(rep.outcome);
        host.handle = Some(handle);
        report.recoveries += 1;
    }
    for (i, host) in hosts.iter_mut().enumerate() {
        let handle = host.handle.as_mut().expect("all hosts recovered");
        for ptr in host.live.drain(..) {
            guard(|| handle.dealloc(ptr))
                .map_err(|m| format!("draining host {i} panicked: {m}"))?
                .map_err(|e| format!("draining host {i}, ptr {:#x}: {e}", ptr.offset()))?;
        }
        handle.cleanup();
        handle.flush_local_caches();
    }
    // Quiesce every simulated cache, then validate from host 0's core.
    for host in hosts.iter() {
        host.handle.as_ref().expect("recovered").flush_cache();
    }
    let checker = hosts[0].handle.as_ref().expect("recovered");
    let core = checker.core();
    guard(|| checker.heap().check_invariants(core))
        .map_err(|m| format!("invariant checker panicked: {m}"))?
        .map_err(|e| format!("invariant violation: {e}"))?;
    fp.tag("ok");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Schedule::generate(42, 3, 200);
        let b = Schedule::generate(42, 3, 200);
        assert_eq!(a, b);
        let c = Schedule::generate(43, 3, 200);
        assert_ne!(a.steps, c.steps);
    }

    #[test]
    fn generation_uses_all_step_kinds() {
        let s = Schedule::generate(7, 2, 500);
        let has = |f: fn(&Step) -> bool| s.steps.iter().any(f);
        assert!(has(|s| matches!(s, Step::Alloc { .. })));
        assert!(has(|s| matches!(s, Step::Dealloc { .. })));
        assert!(has(|s| matches!(s, Step::Cleanup { .. })));
        assert!(has(|s| matches!(s, Step::FlushCache { .. })));
        assert!(has(|s| matches!(s, Step::Crash { .. })));
        assert!(has(|s| matches!(s, Step::Recover { .. })));
    }

    #[test]
    fn run_is_replay_identical() {
        let config = SimConfig::default();
        let schedule = Schedule::generate(0xDECAF, 2, 60);
        let a = run(&config, &schedule, &FaultPlan::none()).unwrap();
        let b = run(&config, &schedule, &FaultPlan::none()).unwrap();
        assert_eq!(a, b, "same schedule must replay byte-identically");
        assert!(a.allocs > 0);
    }

    #[test]
    fn explicit_crash_and_cross_host_recovery() {
        // The ISSUE's canonical example: crash host 1 at a slab push,
        // then recover it on host 0.
        let config = SimConfig::default();
        let schedule = Schedule {
            seed: 0,
            hosts: 2,
            steps: vec![
                Step::Alloc { host: 0, size: 64 },
                Step::Crash {
                    host: 1,
                    at: "slab::push_global::after_cas",
                    skip: 0,
                },
                Step::Alloc { host: 0, size: 128 },
                Step::Recover { host: 1, via: 0 },
                Step::Alloc { host: 1, size: 64 },
                Step::Dealloc { host: 1, index: 0 },
            ],
        };
        let report = run(&config, &schedule, &FaultPlan::none()).unwrap();
        assert_eq!(report.crashes_fired, 1);
        assert_eq!(report.recoveries, 1);
    }

    #[test]
    fn crash_of_crashed_host_is_skipped() {
        let config = SimConfig::default();
        let schedule = Schedule {
            seed: 0,
            hosts: 2,
            steps: vec![
                Step::Crash {
                    host: 0,
                    at: "slab::alloc_block::after_log",
                    skip: 0,
                },
                Step::Crash {
                    host: 0,
                    at: "slab::alloc_block::after_log",
                    skip: 0,
                },
                Step::Alloc { host: 0, size: 64 },
            ],
        };
        let report = run(&config, &schedule, &FaultPlan::none()).unwrap();
        assert_eq!(report.crashes_fired, 1);
        // End-of-run recovery adopted host 0.
        assert_eq!(report.recoveries, 1);
    }

    #[test]
    fn mcas_mode_runs_schedules() {
        let config = SimConfig {
            mode: HwccMode::None,
            ..SimConfig::default()
        };
        let schedule = Schedule::generate(99, 2, 40);
        run(&config, &schedule, &FaultPlan::none()).unwrap();
    }

    #[test]
    fn liveness_generation_is_deterministic_and_complete() {
        let a = Schedule::generate_liveness(42, 3, 500);
        let b = Schedule::generate_liveness(42, 3, 500);
        assert_eq!(a, b);
        let has = |f: fn(&Step) -> bool| a.steps.iter().any(f);
        assert!(has(|s| matches!(s, Step::StopHeartbeat { .. })));
        assert!(has(|s| matches!(s, Step::DetectorTick { .. })));
        assert!(has(|s| matches!(s, Step::DeviceDegrade { .. })));
        assert!(has(|s| matches!(s, Step::Alloc { .. })));
        assert!(has(|s| matches!(s, Step::Crash { .. })));
    }

    #[test]
    fn classic_generation_unchanged_by_liveness_steps() {
        // PR-1 seeds must keep replaying byte-identically: the classic
        // profile may never emit liveness steps.
        let s = Schedule::generate(7, 2, 500);
        assert!(s.steps.iter().all(|s| !matches!(
            s,
            Step::StopHeartbeat { .. } | Step::DetectorTick { .. } | Step::DeviceDegrade { .. }
        )));
    }

    #[test]
    fn hung_host_is_detected_and_adopted() {
        let config = SimConfig {
            lease_expiry_ticks: 2,
            ..SimConfig::default()
        };
        let schedule = Schedule {
            seed: 0,
            hosts: 2,
            steps: vec![
                Step::Alloc { host: 1, size: 64 },
                Step::StopHeartbeat { host: 1 },
                // Tick 1 records host 1's (now frozen) lease; ticks 2–3
                // age it to the expiry budget; the flip and adoption
                // happen inside the third tick.
                Step::DetectorTick { host: 0 },
                Step::DetectorTick { host: 0 },
                Step::DetectorTick { host: 0 },
                // The adopted slot is live again and can allocate.
                Step::Alloc { host: 1, size: 128 },
                Step::Dealloc { host: 1, index: 0 },
            ],
        };
        let report = run(&config, &schedule, &FaultPlan::none()).unwrap();
        assert_eq!(report.hangs, 1);
        assert_eq!(report.detections, 1, "the detector must flip the hung host");
        assert_eq!(report.recoveries, 1, "the ticking host must adopt it");
    }

    #[test]
    fn undetected_hang_is_cleaned_up_at_end_of_run() {
        let config = SimConfig::default();
        let schedule = Schedule {
            seed: 0,
            hosts: 2,
            steps: vec![
                Step::Alloc { host: 1, size: 64 },
                Step::StopHeartbeat { host: 1 },
                // An explicit Recover cannot adopt an undetected hang.
                Step::Recover { host: 1, via: 0 },
            ],
        };
        let report = run(&config, &schedule, &FaultPlan::none()).unwrap();
        assert_eq!(report.hangs, 1);
        assert_eq!(report.detections, 0);
        // Only the end-of-run declare+adopt recovered it.
        assert_eq!(report.recoveries, 1);
    }

    #[test]
    fn device_degrade_completes_via_fallback() {
        let config = SimConfig {
            mode: HwccMode::None,
            lease_expiry_ticks: 2,
            ..SimConfig::default()
        };
        let schedule = Schedule {
            seed: 0,
            hosts: 2,
            steps: vec![
                Step::Alloc { host: 0, size: 64 },
                // 24 bounced pairs: far past the breaker threshold (8),
                // so the heartbeat CAS loop trips into fallback instead
                // of exhausting its 24-retry budget.
                Step::DeviceDegrade { host: 0, pairs: 24 },
                Step::Alloc { host: 1, size: 64 },
                Step::Alloc { host: 0, size: 256 },
                Step::Dealloc { host: 0, index: 0 },
                Step::DetectorTick { host: 0 },
            ],
        };
        let report = run(&config, &schedule, &FaultPlan::none()).unwrap();
        assert_eq!(report.degrades, 1);
        assert!(report.faults_injected >= 8, "bounced pairs are injected faults");
    }

    #[test]
    fn liveness_run_is_replay_identical() {
        let config = SimConfig {
            mode: HwccMode::None,
            ..SimConfig::default()
        };
        let schedule = Schedule::generate_liveness(0xFEED, 2, 80);
        let a = run(&config, &schedule, &FaultPlan::none()).unwrap();
        let b = run(&config, &schedule, &FaultPlan::none()).unwrap();
        assert_eq!(a, b, "liveness schedules must replay byte-identically");
    }
}
