//! Full-heap block census: the end-of-run "zero lost blocks" audit.
//!
//! [`census`] walks every slab of the small and large heaps plus every
//! huge descriptor and enumerates the exact set of allocated block
//! offsets, alongside per-heap counts and a counter-credit check
//! (`free_count` vs bitset population for every sized slab). The serve
//! harness compares the census against its workers' ledgers: a block
//! the heap thinks is allocated but no ledger names is a *lost* block —
//! memory leaked by a crash — and a ledger entry the heap thinks is
//! free is a *phantom* (double-free / lost allocation record).
//!
//! Like [`crate::invariants::check`], the walk must run on a quiescent
//! heap: concurrent allocation makes the bitsets a moving target. It
//! reads durable state (flushing the auditing core's view first), so on
//! software-coherent pods the owners must have flushed or crashed.
//! Remote frees that were published to a slab's HWcc counter but not
//! yet applied to its bitset by the owner still count as allocated —
//! the block's bit is the ground truth the next owner recovers from.
//!
//! That last rule means a census over a heap with cross-thread frees
//! *over-counts* live blocks, by an amount the audit can compute
//! exactly: a sized slab's HWcc payload starts at `blocks` and is
//! decremented once per published-but-unapplied remote free, so
//! `blocks - payload` ([`SlabAudit::remote_pending`]) is precisely the
//! number of census-"allocated" blocks in that slab that are in fact
//! freed and merely awaiting the owner (or a crashed owner's heir).
//! [`remote_buffered`] adds the third population: frees a thread
//! batched in its durable [`Layout::remote_buf`](cxl_pod::Layout)
//! line that were never published at all — visible after a crash that
//! lands mid-batch. A ledger-vs-census audit that credits both terms
//! stays exact under any mix of remote frees and kills.

use crate::cell::{flags, Detect, SwccHeader};
use crate::slab::SlabHeap;
use cxl_pod::{CoreId, PodMemory};

/// Per-slab detail of one sized slab the census walked: where its
/// blocks live and how many of its census-"allocated" blocks are in
/// fact remotely freed but not yet applied by the owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabAudit {
    /// Which sized heap the slab belongs to.
    pub kind: crate::HeapKind,
    /// Slab index within its heap.
    pub slab: u32,
    /// Segment offset of the slab's first block.
    pub base: u64,
    /// Block size in bytes.
    pub block_size: u64,
    /// Blocks per slab for the slab's size class.
    pub blocks: u32,
    /// Blocks whose bitset bit is clear (census counts them allocated).
    pub open: u32,
    /// Published-but-unapplied remote frees: `blocks - HWcc payload`.
    /// Exactly this many of the slab's `open` blocks are actually free.
    pub remote_pending: u32,
}

impl SlabAudit {
    /// Whether `offset` falls inside this slab's block range.
    pub fn contains(&self, offset: u64) -> bool {
        offset >= self.base && offset < self.base + self.blocks as u64 * self.block_size
    }
}

/// One batch of remote frees found in a thread's durable
/// [`Layout::remote_buf`](cxl_pod::Layout) line: recorded against a
/// slab but never published to its HWcc counter. After a crash these
/// are frees the heap does not know about yet; a recovery pass
/// republishes them, and an audit must credit them like
/// [`SlabAudit::remote_pending`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferedBatch {
    /// Thread slot whose durable line holds the batch.
    pub slot: u32,
    /// Which sized heap the batch targets.
    pub kind: crate::HeapKind,
    /// Target slab index.
    pub slab: u32,
    /// Frees in the batch.
    pub pending: u32,
}

/// The result of a full-heap walk: every allocated block, by heap.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockCensus {
    /// Segment offsets of every allocated small-heap block, ascending.
    pub small: Vec<u64>,
    /// Segment offsets of every allocated large-heap block, ascending.
    pub large: Vec<u64>,
    /// Segment offsets of every live huge allocation, ascending.
    pub huge: Vec<u64>,
    /// Mapped slabs walked (small heap).
    pub small_slabs: u32,
    /// Mapped slabs walked (large heap).
    pub large_slabs: u32,
    /// Per-slab audit detail for every *sized* slab, in walk order
    /// (small heap first). Slabs with `open == 0 && remote_pending == 0`
    /// are omitted — only slabs that matter to an audit appear.
    pub slabs: Vec<SlabAudit>,
}

impl BlockCensus {
    /// Total allocated blocks across all three heaps.
    pub fn total(&self) -> usize {
        self.small.len() + self.large.len() + self.huge.len()
    }

    /// All allocated offsets across all three heaps, ascending.
    pub fn all_offsets(&self) -> Vec<u64> {
        let mut all: Vec<u64> =
            self.small.iter().chain(&self.large).chain(&self.huge).copied().collect();
        all.sort_unstable();
        all
    }

    /// Total published-but-unapplied remote frees across every slab:
    /// how many census-"allocated" blocks are actually free.
    pub fn remote_pending_total(&self) -> u64 {
        self.slabs.iter().map(|s| s.remote_pending as u64).sum()
    }
}

/// The allocation state of a single block, as probed by
/// [`block_state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// The block's bitset bit is clear (small/large) or its huge
    /// descriptor carries no free bit: the heap considers it allocated.
    Allocated,
    /// The heap considers the offset free (cleared bit, freed huge
    /// descriptor, unsized slab, or no descriptor at all).
    Free,
}

/// Probes whether the durable heap image considers `offset` allocated.
///
/// Used by crash adopters to reconcile an inherited allocation ledger:
/// a ledger cell naming a [`BlockState::Free`] offset is a phantom left
/// by a crash between a completed free and the ledger update, and must
/// be cleared. The probe only reads the slab that owns `offset` (or the
/// huge descriptor lists), so it is safe while *other* threads run —
/// the caller must own (or have adopted) the blocks it probes.
///
/// # Errors
///
/// A description of why the offset cannot be probed (outside every
/// heap, or a bogus descriptor on the way).
pub fn block_state(mem: &dyn PodMemory, core: CoreId, offset: u64) -> Result<BlockState, String> {
    let layout = mem.layout();
    for heap in [SlabHeap::small(), SlabHeap::large()] {
        let hl = heap.hl(mem);
        if !hl.data.contains(offset) {
            continue;
        }
        let Some(slab) = hl.slab_of(offset) else {
            return Err(format!("{}: offset {offset:#x} maps to no slab", heap.kind));
        };
        mem.flush(core, hl.swcc_desc_at(slab), hl.swcc_desc_stride);
        mem.fence(core);
        let header = SwccHeader::unpack(mem.load_u64(core, hl.swcc_desc_at(slab)));
        if header.flags & flags::SIZED == 0 {
            return Ok(BlockState::Free);
        }
        let blocks = heap.classes.blocks_per_slab(header.class);
        let size = heap.classes.block_size(header.class) as u64;
        let within = offset - hl.slab_data_at(slab);
        if !within.is_multiple_of(size) || (within / size) as u32 >= blocks {
            return Ok(BlockState::Free);
        }
        let bits = crate::bitset::BlockBits::new(mem, hl.bitset_at(slab), blocks);
        return Ok(if bits.get(core, (within / size) as u32) {
            BlockState::Free
        } else {
            BlockState::Allocated
        });
    }
    if layout.huge.data.contains(offset) {
        let hl = &layout.huge;
        for slot in 0..layout.max_threads {
            mem.flush(core, hl.local_descs_at(slot), 8);
            mem.fence(core);
            let mut cursor = mem.load_u64(core, hl.local_descs_at(slot));
            let mut hops = 0;
            while cursor != 0 {
                hops += 1;
                if hops > hl.descs_per_thread {
                    return Err(format!("huge: descriptor list of slot {slot} cycles"));
                }
                mem.flush(core, cursor, 32);
                if mem.load_u64(core, cursor + 8) == offset {
                    return Ok(if mem.load_u64(core, cursor + 24) == 0 {
                        BlockState::Allocated
                    } else {
                        BlockState::Free
                    });
                }
                cursor = mem.load_u64(core, cursor);
            }
        }
        return Ok(BlockState::Free);
    }
    Err(format!("offset {offset:#x} is outside every heap"))
}

/// Walks the whole heap and enumerates every allocated block.
///
/// Also validates counter credit on the way: for every sized slab, the
/// durable `free_count` must equal its bitset population.
///
/// # Errors
///
/// A human-readable description of the first inconsistency found.
pub fn census(mem: &dyn PodMemory, core: CoreId) -> Result<BlockCensus, String> {
    let mut out = BlockCensus::default();
    for heap in [SlabHeap::small(), SlabHeap::large()] {
        let offsets = match heap.kind {
            crate::HeapKind::Small => &mut out.small,
            _ => &mut out.large,
        };
        let walked = census_slab_heap(mem, core, &heap, offsets, &mut out.slabs)?;
        match heap.kind {
            crate::HeapKind::Small => out.small_slabs = walked,
            _ => out.large_slabs = walked,
        }
    }
    census_huge(mem, core, &mut out.huge)?;
    out.small.sort_unstable();
    out.large.sort_unstable();
    out.huge.sort_unstable();
    Ok(out)
}

fn census_slab_heap(
    mem: &dyn PodMemory,
    core: CoreId,
    heap: &SlabHeap,
    offsets: &mut Vec<u64>,
    slabs: &mut Vec<SlabAudit>,
) -> Result<u32, String> {
    let hl = heap.hl(mem);
    let kind = heap.kind;
    let len = heap.len(mem, core);
    for slab in 0..len {
        // The auditor may run on any core; flush its (possibly stale)
        // view of the whole descriptor before reading.
        mem.flush(core, hl.swcc_desc_at(slab), hl.swcc_desc_stride);
        mem.fence(core);
        let header = SwccHeader::unpack(mem.load_u64(core, hl.swcc_desc_at(slab)));
        if header.flags & flags::SIZED == 0 {
            // Unsized (or never-initialized): no block structure, no
            // allocated blocks. Its memory is wholly available.
            continue;
        }
        let class = header.class;
        let blocks = heap.classes.blocks_per_slab(class);
        if blocks == 0 {
            return Err(format!("{kind}: slab {slab} has bogus class {class}"));
        }
        let bits = crate::bitset::BlockBits::new(mem, hl.bitset_at(slab), blocks);
        let free = bits.count_set(core);
        let counted = mem.load_u64(core, hl.free_count_at(slab)) as u32;
        // Counter credit: owners may cache the count, but the audit
        // runs against the durable image, where the two must agree.
        if counted != free {
            return Err(format!(
                "{kind}: slab {slab} free count {counted} != bitset population {free}"
            ));
        }
        let base = hl.slab_data_at(slab);
        let size = heap.classes.block_size(class) as u64;
        for bit in 0..blocks {
            if !bits.get(core, bit) {
                offsets.push(base + bit as u64 * size);
            }
        }
        // The HWcc payload (hardware-coherent, no flush needed) starts
        // at `blocks` and loses one per published remote free the owner
        // has not applied — so `blocks - payload` of this slab's open
        // blocks are actually free.
        let payload = Detect::unpack(mem.load_u64(core, hl.hwcc_desc_at(slab))).payload;
        if payload > blocks {
            return Err(format!(
                "{kind}: slab {slab} HWcc payload {payload} exceeds {blocks} blocks"
            ));
        }
        let open = blocks - free;
        let remote_pending = blocks - payload;
        if remote_pending > open {
            return Err(format!(
                "{kind}: slab {slab} has {remote_pending} pending remote frees \
                 but only {open} open blocks"
            ));
        }
        if open > 0 || remote_pending > 0 {
            slabs.push(SlabAudit {
                kind,
                slab,
                base,
                block_size: size,
                blocks,
                open,
                remote_pending,
            });
        }
    }
    Ok(len)
}

/// Scans every thread slot's durable remote-free line and returns the
/// batches recorded there: frees buffered against a slab but never
/// published to its HWcc counter. On a quiesced heap of *live* threads
/// this is empty (quiesce points drain the buffers); after a crash it
/// holds exactly the batches the kill caught in flight, which a
/// ledger-vs-census audit must credit as already-freed.
///
/// Batches double-counted against a logged `RemoteFree*` redo are the
/// recovery scanner's concern ([`crate::recovery`]), not this one's:
/// by the time an audit runs, recovery has already republished or
/// cleared every line belonging to an adopted slot, so whatever this
/// scan still sees is genuinely unpublished.
pub fn remote_buffered(mem: &dyn PodMemory, core: CoreId) -> Vec<BufferedBatch> {
    let layout = mem.layout();
    let mut out = Vec::new();
    for slot in 0..layout.max_threads {
        for i in 0..crate::remote::durable::WORDS {
            let off = layout.remote_buf_word_at(slot, i);
            mem.flush(core, off, 8);
            mem.fence(core);
            let word = mem.load_u64(core, off);
            if let Some((kind, slab, pending)) = crate::remote::durable::unpack(word) {
                if pending > 0 {
                    out.push(BufferedBatch { slot, kind, slab, pending });
                }
            }
        }
    }
    out
}

/// One batch of remote frees found in a thread's durable
/// combiner-request word ([`crate::comb`]): posted for flat-combined
/// publication (or claimed by a winner) but with the combined decrement
/// not yet landed. Like [`BufferedBatch`], an exact
/// ledger-vs-census audit must credit these as already-freed. Words in
/// the DONE state are *not* reported — their decrement landed and is
/// already visible as [`SlabAudit::remote_pending`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CombBatch {
    /// Thread slot whose request word holds the batch.
    pub slot: u32,
    /// Which sized heap the batch targets.
    pub kind: crate::HeapKind,
    /// Target slab index.
    pub slab: u32,
    /// Frees in the batch.
    pub pending: u32,
}

/// Scans every thread slot's combiner-request word and returns the
/// batches still pending there (POSTED or CLAIMED — publication in
/// flight when the snapshot was taken, typically because a kill caught
/// a combiner mid-protocol; the winner's recovery publishes them).
pub fn comb_pending(mem: &dyn PodMemory, core: CoreId) -> Vec<CombBatch> {
    let _ = core; // request words are direct segment atomics
    let layout = mem.layout();
    let mut out = Vec::new();
    for slot in 0..layout.max_threads {
        let word = crate::comb::read_word(mem, slot);
        if !crate::comb::is_pending(word) {
            continue;
        }
        let Some(kind) = crate::comb::kind_of(word) else {
            continue;
        };
        let pending = crate::comb::k_of(word);
        if pending > 0 {
            out.push(CombBatch {
                slot,
                kind,
                slab: crate::comb::slab_of(word),
                pending,
            });
        }
    }
    out
}

fn census_huge(mem: &dyn PodMemory, core: CoreId, offsets: &mut Vec<u64>) -> Result<(), String> {
    let layout = mem.layout();
    let hl = &layout.huge;
    for slot in 0..layout.max_threads {
        mem.flush(core, hl.local_descs_at(slot), 8);
        mem.fence(core);
        let mut cursor = mem.load_u64(core, hl.local_descs_at(slot));
        let mut hops = 0;
        while cursor != 0 {
            hops += 1;
            if hops > hl.descs_per_thread {
                return Err(format!("huge: descriptor list of slot {slot} cycles"));
            }
            mem.flush(core, cursor, 32);
            let offset = mem.load_u64(core, cursor + 8);
            let size = mem.load_u64(core, cursor + 16);
            if size == 0 || !hl.data.contains(offset) {
                return Err(format!(
                    "huge: descriptor {cursor:#x} covers bad range [{offset:#x}, +{size})"
                ));
            }
            // Freed descriptors linger on the list until a cleanup pass
            // recycles them; the free bit says the block is gone.
            if mem.load_u64(core, cursor + 24) == 0 {
                offsets.push(offset);
            }
            cursor = mem.load_u64(core, cursor);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{AttachOptions, Cxlalloc};
    use cxl_pod::{CoreId, Pod, PodConfig};

    fn heap() -> Cxlalloc {
        let pod = Pod::new(PodConfig::small_for_tests()).unwrap();
        Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap()
    }

    #[test]
    fn empty_heap_has_empty_census() {
        let heap = heap();
        let census = heap.census(CoreId(0)).unwrap();
        assert_eq!(census.total(), 0);
    }

    #[test]
    fn census_counts_exactly_the_live_blocks() {
        let heap = heap();
        let mut t = heap.register_thread().unwrap();
        let small: Vec<_> = (0..300).map(|_| t.alloc(64).unwrap()).collect();
        let large: Vec<_> = (0..5).map(|_| t.alloc(8192).unwrap()).collect();
        let huge = t.alloc(2 << 20).unwrap();
        t.flush_cache();

        let census = heap.census(t.core()).unwrap();
        assert_eq!(census.small.len(), 300);
        assert_eq!(census.large.len(), 5);
        assert_eq!(census.huge, vec![huge.offset()]);
        let mut want: Vec<u64> = small.iter().chain(&large).map(|p| p.offset()).collect();
        want.push(huge.offset());
        want.sort_unstable();
        assert_eq!(census.all_offsets(), want);

        // Free half; the census tracks exactly.
        for p in &small[..150] {
            t.dealloc(*p).unwrap();
        }
        t.dealloc(huge).unwrap();
        t.flush_cache();
        let census = heap.census(t.core()).unwrap();
        assert_eq!(census.small.len(), 150);
        assert_eq!(census.huge.len(), 0);
        let survivors: std::collections::BTreeSet<u64> =
            small[150..].iter().map(|p| p.offset()).collect();
        assert_eq!(
            census.small.iter().copied().collect::<std::collections::BTreeSet<u64>>(),
            survivors
        );
    }

    #[test]
    fn block_state_tracks_alloc_and_free() {
        use super::BlockState;
        let heap = heap();
        let mut t = heap.register_thread().unwrap();
        let small = t.alloc(64).unwrap();
        let large = t.alloc(8192).unwrap();
        let huge = t.alloc(2 << 20).unwrap();
        t.flush_cache();
        let mem = || heap.process().memory().clone();
        for p in [small, large, huge] {
            assert_eq!(
                super::block_state(mem().as_ref(), t.core(), p.offset()),
                Ok(BlockState::Allocated),
                "{p}"
            );
        }
        t.dealloc(small).unwrap();
        t.dealloc(huge).unwrap();
        t.flush_cache();
        assert_eq!(
            super::block_state(mem().as_ref(), t.core(), small.offset()),
            Ok(BlockState::Free)
        );
        assert_eq!(
            super::block_state(mem().as_ref(), t.core(), huge.offset()),
            Ok(BlockState::Free)
        );
        assert_eq!(
            super::block_state(mem().as_ref(), t.core(), large.offset()),
            Ok(BlockState::Allocated)
        );
        assert!(super::block_state(mem().as_ref(), t.core(), u64::MAX).is_err());
    }

    fn heap_with(options: AttachOptions) -> Cxlalloc {
        let pod = Pod::new(PodConfig::small_for_tests()).unwrap();
        Cxlalloc::attach(pod.spawn_process(), options).unwrap()
    }

    #[test]
    fn census_accounts_for_pending_remote_frees() {
        let heap = heap();
        let mut a = heap.register_thread().unwrap();
        let mut b = heap.register_thread().unwrap();
        let blocks: Vec<_> = (0..20).map(|_| a.alloc(64).unwrap()).collect();
        a.flush_cache();

        // b frees 7 of a's blocks: owner mismatch takes the remote path,
        // and the default batch width of 1 publishes each immediately.
        for p in &blocks[..7] {
            b.dealloc(*p).unwrap();
        }
        b.flush_cache();
        a.flush_cache();

        let census = heap.census(a.core()).unwrap();
        // The bits stay clear until the payload drains, so the census
        // still "sees" all 20 — but the pending arithmetic knows 7 of
        // them are already free.
        assert_eq!(census.small.len(), 20);
        assert_eq!(census.remote_pending_total(), 7);
        let slab = census.slabs.iter().find(|s| s.remote_pending > 0).unwrap();
        assert_eq!(slab.kind, crate::HeapKind::Small);
        assert!(slab.open >= slab.remote_pending);
        for p in &blocks {
            assert!(slab.contains(p.offset()), "{p}");
        }
        assert_eq!(
            census.small.len() as u64 - census.remote_pending_total(),
            13,
            "effective live population must credit the pending frees"
        );
    }

    #[test]
    fn remote_buffered_sees_mid_batch_frees() {
        let heap = heap_with(AttachOptions {
            remote_free_batch: 8,
            ..AttachOptions::default()
        });
        let mut a = heap.register_thread().unwrap();
        let mut b = heap.register_thread().unwrap();
        let blocks: Vec<_> = (0..20).map(|_| a.alloc(64).unwrap()).collect();
        a.flush_cache();

        // 3 frees sit below the batch threshold of 8: buffered in DRAM,
        // mirrored in b's durable remote_buf line, unpublished.
        for p in &blocks[..3] {
            b.dealloc(*p).unwrap();
        }
        let mem = heap.process().memory().clone();
        let batches = super::remote_buffered(mem.as_ref(), a.core());
        assert_eq!(batches.len(), 1, "{batches:?}");
        assert_eq!(batches[0].slot, b.tid().slot());
        assert_eq!(batches[0].kind, crate::HeapKind::Small);
        assert_eq!(batches[0].pending, 3);
        // Unpublished means the payload has not moved yet.
        let census = heap.census(a.core()).unwrap();
        assert_eq!(census.remote_pending_total(), 0);
        assert_eq!(census.small.len(), 20);

        // The quiesce point publishes the batch: buffer empty, pending
        // arithmetic takes over.
        b.flush_cache();
        assert!(super::remote_buffered(mem.as_ref(), a.core()).is_empty());
        let census = heap.census(a.core()).unwrap();
        assert_eq!(census.remote_pending_total(), 3);
        assert_eq!(census.small.len(), 20);
    }

    #[test]
    fn census_spans_threads() {
        let heap = heap();
        let mut a = heap.register_thread().unwrap();
        let mut b = heap.register_thread().unwrap();
        let pa = a.alloc(64).unwrap();
        let pb = b.alloc(900).unwrap();
        a.flush_cache();
        b.flush_cache();
        let census = heap.census(a.core()).unwrap();
        assert_eq!(census.small.len(), 2);
        assert!(census.small.contains(&pa.offset()));
        assert!(census.small.contains(&pb.offset()));
    }
}
