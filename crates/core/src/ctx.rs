//! Per-thread operation context.

use crate::dcas::Dcas;
use crate::oplog::OpLog;
use crate::ThreadId;
use cxl_pod::{CoreId, PodMemory, Process};
use std::sync::Arc;

/// Everything a heap operation needs about the calling thread: its
/// identity, its core (cache), its process (mapping view), and handles to
/// its recovery log and the detectable-CAS help array.
pub(crate) struct Ctx<'m> {
    pub mem: &'m dyn PodMemory,
    pub core: CoreId,
    pub tid: ThreadId,
    pub process: &'m Arc<Process>,
    /// Maximum length of the thread-local unsized list before slabs
    /// overflow to the global free list.
    pub unsized_limit: u32,
    /// Whether recovery state (redo log, help records) is maintained.
    /// `false` reproduces the `cxlalloc-nonrecoverable` ablation.
    pub recoverable: bool,
}

impl<'m> Ctx<'m> {
    /// The thread's recovery log (inert when recovery is disabled).
    pub fn log(&self) -> OpLog<'m> {
        OpLog::with_enabled(self.mem, self.tid.slot(), self.recoverable)
    }

    /// Detectable-CAS handle (plain CAS when recovery is disabled).
    pub fn dcas(&self) -> Dcas<'m> {
        Dcas::with_detectable(self.mem, self.recoverable)
    }
}

impl<'m> std::fmt::Debug for Ctx<'m> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("tid", &self.tid)
            .field("core", &self.core)
            .finish_non_exhaustive()
    }
}
