//! Per-thread operation context.

use crate::crash;
use crate::dcas::Dcas;
use crate::oplog::OpLog;
use crate::remote::{Magazines, RemoteFreeBuffer};
use crate::shadow::DescShadow;
use crate::ThreadId;
use cxl_pod::{CoreId, PodMemory, Process};
use std::sync::Arc;

/// Everything a heap operation needs about the calling thread: its
/// identity, its core (cache), its process (mapping view), and handles to
/// its recovery log and the detectable-CAS help array.
pub(crate) struct Ctx<'m> {
    pub mem: &'m dyn PodMemory,
    pub core: CoreId,
    pub tid: ThreadId,
    pub process: &'m Arc<Process>,
    /// Maximum length of the thread-local unsized list before slabs
    /// overflow to the global free list.
    pub unsized_limit: u32,
    /// Whether recovery state (redo log, help records) is maintained.
    /// `false` reproduces the `cxlalloc-nonrecoverable` ablation.
    pub recoverable: bool,
    /// The calling thread's descriptor shadow (`None` for contexts that
    /// act on *another* thread's structures — recovery, fault handling —
    /// which must read pod memory directly).
    pub shadow: Option<&'m DescShadow>,
    /// The calling thread's pending-remote-free buffer (`None` for
    /// foreign-thread contexts, which never buffer).
    pub remote: Option<&'m RemoteFreeBuffer>,
    /// Remote frees buffered per slab before a batched publish; 1 means
    /// eager (publish every free individually, the paper's base
    /// protocol).
    pub remote_free_batch: u32,
    /// The calling thread's free-block magazines (`None` for
    /// foreign-thread contexts).
    pub magazines: Option<&'m Magazines>,
    /// The calling thread's flat-combining state (`None` for
    /// foreign-thread contexts, which always publish directly).
    pub comb: Option<&'m crate::comb::Combiner>,
    /// Whether log clears may defer their durability to the next
    /// operation's `begin` flush (fence coalescing).
    pub coalesce_fences: bool,
    /// Whether allocation scans start from the per-slab first-fit
    /// rover hint in the shadow (`false` reproduces scan-from-zero, for the
    /// rover differential tests and ablation benches).
    pub rover: bool,
    /// Whether a thread's last emptied slab may stay on its sized list
    /// (empty-slab hysteresis) instead of cycling through the unsized
    /// list and a full re-init on the next same-class allocation.
    pub retain_empty: bool,
}

impl<'m> Ctx<'m> {
    /// The thread's recovery log (inert when recovery is disabled).
    pub fn log(&self) -> OpLog<'m> {
        OpLog::with_options(self.mem, self.tid.slot(), self.recoverable, self.coalesce_fences)
    }

    /// Detectable-CAS handle (plain CAS when recovery is disabled).
    pub fn dcas(&self) -> Dcas<'m> {
        Dcas::with_detectable(self.mem, self.recoverable)
    }

    /// A crash point that first drains deferred shadow stores into the
    /// (to-be-discarded) simulated cache, so the crash image white-box
    /// tests and schedule exploration observe is byte-identical to the
    /// unshadowed implementation. The drain runs only when a crash plan
    /// is armed; otherwise this is exactly [`crash::point`].
    #[inline]
    pub fn crash_point(&self, label: &'static str) {
        if crash::armed() {
            if let Some(shadow) = self.shadow {
                shadow.sync_all(self.mem, self.core);
            }
        }
        crash::point(label);
    }
}

impl<'m> std::fmt::Debug for Ctx<'m> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("tid", &self.tid)
            .field("core", &self.core)
            .finish_non_exhaustive()
    }
}
