//! Size classes for the small and large heaps.
//!
//! Slab allocation (paper §2.2) statically splits memory into fixed-size
//! slabs and dynamically splits each slab into equal blocks of one *size
//! class*. Class granularity balances internal fragmentation against the
//! number of thread-local free lists.
//!
//! * Small heap: 28 classes from 8 B to 1 KiB (8-byte steps up to 128 B,
//!   then ~25 % geometric steps), in 32 KiB slabs.
//! * Large heap: 19 classes from 1 KiB to 512 KiB (power-of-two and
//!   mid-point steps), in 512 KiB slabs.

use cxl_pod::{LARGE_CLASSES, LARGE_SLAB_SIZE, SMALL_CLASSES, SMALL_SLAB_SIZE};

/// Block sizes of the small heap's classes, ascending.
pub const SMALL_CLASS_SIZES: [u32; SMALL_CLASSES as usize] = [
    8, 16, 24, 32, 40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128, // 8-byte steps
    160, 192, 224, 256, // 32-byte steps
    320, 384, 448, 512, // 64-byte steps
    640, 768, 896, 1024, // 128-byte steps
];

/// Block sizes of the large heap's classes, ascending.
pub const LARGE_CLASS_SIZES: [u32; LARGE_CLASSES as usize] = [
    1 << 10,
    3 << 9, // 1.5 KiB
    2 << 10,
    3 << 10,
    4 << 10,
    6 << 10,
    8 << 10,
    12 << 10,
    16 << 10,
    24 << 10,
    32 << 10,
    48 << 10,
    64 << 10,
    96 << 10,
    128 << 10,
    192 << 10,
    256 << 10,
    384 << 10,
    512 << 10,
];

/// A size-class table: maps request sizes to classes and back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassTable {
    sizes: &'static [u32],
    slab_size: u64,
}

/// The small heap's class table.
pub const SMALL_CLASSES_TABLE: ClassTable = ClassTable {
    sizes: &SMALL_CLASS_SIZES,
    slab_size: SMALL_SLAB_SIZE,
};

/// The large heap's class table.
pub const LARGE_CLASSES_TABLE: ClassTable = ClassTable {
    sizes: &LARGE_CLASS_SIZES,
    slab_size: LARGE_SLAB_SIZE,
};

impl ClassTable {
    /// Number of classes.
    #[inline]
    pub fn len(&self) -> u32 {
        self.sizes.len() as u32
    }

    /// Whether the table is empty (never, provided for completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Largest size this table serves.
    #[inline]
    pub fn max_size(&self) -> u32 {
        *self.sizes.last().expect("tables are nonempty")
    }

    /// The class serving `size` bytes, or `None` if `size` is zero or
    /// exceeds [`ClassTable::max_size`].
    #[inline]
    pub fn class_of(&self, size: usize) -> Option<u8> {
        if size == 0 || size > self.max_size() as usize {
            return None;
        }
        // Tables are tiny (≤ 28 entries) and the partition point is found
        // by binary search.
        let idx = self.sizes.partition_point(|&s| (s as usize) < size);
        Some(idx as u8)
    }

    /// Block size of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[inline]
    pub fn block_size(&self, class: u8) -> u32 {
        self.sizes[class as usize]
    }

    /// Number of blocks a slab of this heap holds at `class`.
    #[inline]
    pub fn blocks_per_slab(&self, class: u8) -> u32 {
        (self.slab_size / self.block_size(class) as u64) as u32
    }

    /// The slab size of this heap.
    #[inline]
    pub fn slab_size(&self) -> u64 {
        self.slab_size
    }

    /// Internal fragmentation of serving `size` from its class, in bytes.
    pub fn waste(&self, size: usize) -> Option<usize> {
        self.class_of(size)
            .map(|c| self.block_size(c) as usize - size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lengths_match_layout_constants() {
        assert_eq!(SMALL_CLASSES_TABLE.len(), SMALL_CLASSES);
        assert_eq!(LARGE_CLASSES_TABLE.len(), LARGE_CLASSES);
    }

    #[test]
    fn sizes_are_strictly_ascending_and_aligned() {
        for table in [&SMALL_CLASSES_TABLE, &LARGE_CLASSES_TABLE] {
            for w in table.sizes.windows(2) {
                assert!(w[0] < w[1]);
            }
            for &s in table.sizes {
                assert_eq!(s % 8, 0, "class size {s} must be 8-byte aligned");
                // Sizes need not divide the slab exactly (trailing waste
                // is allowed), but every class must fit at least one
                // block.
                assert!(table.slab_size >= s as u64);
            }
        }
    }

    #[test]
    fn class_of_boundaries() {
        let t = &SMALL_CLASSES_TABLE;
        assert_eq!(t.class_of(0), None);
        assert_eq!(t.class_of(1), Some(0));
        assert_eq!(t.class_of(8), Some(0));
        assert_eq!(t.class_of(9), Some(1));
        assert_eq!(t.class_of(128), Some(15));
        assert_eq!(t.class_of(129), Some(16));
        assert_eq!(t.class_of(1024), Some(27));
        assert_eq!(t.class_of(1025), None);
    }

    #[test]
    fn large_class_boundaries() {
        let t = &LARGE_CLASSES_TABLE;
        assert_eq!(t.class_of(1024), Some(0));
        assert_eq!(t.class_of(1025), Some(1));
        assert_eq!(t.class_of(512 << 10), Some(18));
        assert_eq!(t.class_of((512 << 10) + 1), None);
    }

    #[test]
    fn blocks_per_slab_is_sane() {
        assert_eq!(SMALL_CLASSES_TABLE.blocks_per_slab(0), 4096); // 32 KiB / 8 B
        assert_eq!(SMALL_CLASSES_TABLE.blocks_per_slab(27), 32); // 32 KiB / 1 KiB
        assert_eq!(LARGE_CLASSES_TABLE.blocks_per_slab(0), 512); // 512 KiB / 1 KiB
        assert_eq!(LARGE_CLASSES_TABLE.blocks_per_slab(18), 1); // 512 KiB / 512 KiB
    }

    #[test]
    fn block_size_roundtrip() {
        for table in [&SMALL_CLASSES_TABLE, &LARGE_CLASSES_TABLE] {
            for class in 0..table.len() as u8 {
                let size = table.block_size(class) as usize;
                assert_eq!(table.class_of(size), Some(class));
                assert_eq!(table.waste(size), Some(0));
            }
        }
    }

    #[test]
    fn waste_is_bounded() {
        // Geometric spacing keeps internal fragmentation under ~25 %.
        for size in 1..=1024usize {
            let waste = SMALL_CLASSES_TABLE.waste(size).unwrap();
            assert!(
                waste < 8.max(size / 3),
                "size {size} wastes {waste} bytes"
            );
        }
    }
}
