//! Schedule exploration and shrinking.
//!
//! The [`Explorer`] turns the deterministic driver of [`crate::sched`]
//! into a property harness: it enumerates seeds, runs the canonical
//! random schedule of each, and requires every run to survive its
//! crashes, recover every host, and pass
//! [`crate::invariants::check`]. Because the driver is deterministic,
//! a failing seed *is* the bug report — `run_seed(seed)` reproduces it
//! byte-identically — and [`Explorer::shrink`] reduces the failing
//! schedule to a minimal reproducer by greedy chunked delta-debugging
//! (re-running the schedule after each tentative cut).

use crate::sched::{self, FaultPlan, RunReport, Schedule, ScheduleFailure, SimConfig};
use cxl_pod::FabricConfig;

/// Configuration of an exploration campaign.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Driver configuration shared by every run.
    pub config: SimConfig,
    /// Steps per generated schedule.
    pub steps_per_run: usize,
    /// Fault plan applied to every run.
    pub plan: FaultPlan,
    /// Generate with the liveness profile
    /// ([`Schedule::generate_liveness`]): heartbeat stops, detector
    /// ticks, and device-outage bursts join the step mix.
    pub liveness: bool,
    /// Run every schedule on a congested fabric
    /// ([`FabricConfig::congested`]) unless `config.fabric` already
    /// picks one: campaigns then prove that fabric queueing delays —
    /// which reorder nothing, only reprice it — cannot change any step
    /// outcome, recovery decision, or invariant.
    pub congested: bool,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            config: SimConfig::default(),
            steps_per_run: 40,
            plan: FaultPlan::none(),
            liveness: false,
            congested: false,
        }
    }
}

/// Outcome of an exploration campaign.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Number of schedules run.
    pub runs: usize,
    /// Aggregate successful-run statistics.
    pub total_allocs: u64,
    /// Crashes that fired across all runs.
    pub total_crashes: u64,
    /// Recoveries performed across all runs.
    pub total_recoveries: u64,
    /// Heartbeats stopped (hosts hung) across all runs.
    pub total_hangs: u64,
    /// Expired leases flipped DEAD by detector ticks across all runs.
    pub total_detections: u64,
    /// Device-outage bursts injected across all runs.
    pub total_degrades: u64,
    /// Failing seeds with their failures, in discovery order.
    pub failures: Vec<(u64, ScheduleFailure)>,
}

impl ExploreReport {
    /// Whether every run passed.
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl Explorer {
    /// The canonical schedule for `seed` under this explorer's
    /// configuration.
    pub fn schedule_for(&self, seed: u64) -> Schedule {
        if self.liveness {
            Schedule::generate_liveness(seed, self.config.hosts, self.steps_per_run)
        } else {
            Schedule::generate(seed, self.config.hosts, self.steps_per_run)
        }
    }

    /// The driver configuration actually run: `config`, with the
    /// congested-fabric preset overlaid when [`Explorer::congested`] is
    /// set and `config.fabric` is `None`.
    pub fn effective_config(&self) -> SimConfig {
        let mut config = self.config.clone();
        if self.congested && config.fabric.is_none() {
            config.fabric = Some(FabricConfig::congested());
        }
        config
    }

    /// Runs the canonical schedule of `seed`.
    ///
    /// # Errors
    ///
    /// Propagates the driver's [`ScheduleFailure`].
    pub fn run_seed(&self, seed: u64) -> Result<RunReport, ScheduleFailure> {
        sched::run(&self.effective_config(), &self.schedule_for(seed), &self.plan)
    }

    /// Runs `runs` schedules for seeds `base_seed..base_seed + runs`,
    /// collecting every failure (exploration does not stop at the
    /// first one).
    pub fn explore(&self, base_seed: u64, runs: usize) -> ExploreReport {
        let mut report = ExploreReport {
            runs,
            total_allocs: 0,
            total_crashes: 0,
            total_recoveries: 0,
            total_hangs: 0,
            total_detections: 0,
            total_degrades: 0,
            failures: Vec::new(),
        };
        for i in 0..runs {
            let seed = base_seed.wrapping_add(i as u64);
            match self.run_seed(seed) {
                Ok(r) => {
                    report.total_allocs += r.allocs;
                    report.total_crashes += r.crashes_fired;
                    report.total_recoveries += r.recoveries;
                    report.total_hangs += r.hangs;
                    report.total_detections += r.detections;
                    report.total_degrades += r.degrades;
                }
                Err(failure) => report.failures.push((seed, failure)),
            }
        }
        report
    }

    /// Whether `schedule` fails under this explorer's plan.
    pub fn fails(&self, schedule: &Schedule) -> bool {
        sched::run(&self.effective_config(), schedule, &self.plan).is_err()
    }

    /// Shrinks a failing schedule to a locally minimal reproducer:
    /// repeatedly removes chunks of steps (halving the chunk size down
    /// to single steps) as long as the remainder still fails. The
    /// result is 1-minimal — removing any single remaining step makes
    /// the failure disappear — and carries the original seed for
    /// provenance.
    ///
    /// Returns `schedule` unchanged if it does not fail to begin with.
    pub fn shrink(&self, schedule: &Schedule) -> Schedule {
        if !self.fails(schedule) {
            return schedule.clone();
        }
        let mut steps = schedule.steps.clone();
        let mut chunk = (steps.len() / 2).max(1);
        loop {
            let mut reduced = false;
            let mut start = 0;
            while start < steps.len() {
                let end = (start + chunk).min(steps.len());
                let mut candidate: Vec<_> = steps[..start].to_vec();
                candidate.extend_from_slice(&steps[end..]);
                if candidate.len() < steps.len()
                    && self.fails(&Schedule {
                        seed: schedule.seed,
                        hosts: schedule.hosts,
                        steps: candidate.clone(),
                    })
                {
                    steps = candidate;
                    reduced = true;
                    // Do not advance: the next chunk slid into `start`.
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 && !reduced {
                break;
            }
            if !reduced {
                chunk = (chunk / 2).max(1);
            }
        }
        Schedule {
            seed: schedule.seed,
            hosts: schedule.hosts,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_passes_without_faults() {
        let explorer = Explorer {
            steps_per_run: 25,
            ..Explorer::default()
        };
        let report = explorer.explore(1000, 8);
        assert!(
            report.all_passed(),
            "failures: {:?}",
            report.failures
        );
        assert!(report.total_allocs > 0);
    }

    #[test]
    fn liveness_campaign_passes_and_exercises_new_steps() {
        let explorer = Explorer {
            liveness: true,
            steps_per_run: 60,
            ..Explorer::default()
        };
        let report = explorer.explore(2000, 8);
        assert!(report.all_passed(), "failures: {:?}", report.failures);
        assert!(report.total_hangs > 0, "no heartbeat stops exercised");
        assert!(report.total_degrades > 0, "no device outages exercised");
        // Every hang must eventually be recovered (in-schedule adoption
        // or end-of-run cleanup), so recoveries bound hangs from above.
        assert!(report.total_recoveries >= report.total_hangs);
    }

    #[test]
    fn congested_campaign_matches_uncongested_outcomes() {
        // Fabric queueing reprices operations but reorders nothing: a
        // congested campaign must produce byte-identical run reports
        // (fingerprints hash outcomes and offsets, not latencies).
        let base = Explorer {
            steps_per_run: 25,
            ..Explorer::default()
        };
        let congested = Explorer {
            congested: true,
            ..base.clone()
        };
        assert!(congested.effective_config().fabric.is_some());
        for seed in 3000..3006u64 {
            let a = base.run_seed(seed).expect("uncongested seed passes");
            let b = congested.run_seed(seed).expect("congested seed passes");
            assert_eq!(a, b, "seed {seed} diverged under a congested fabric");
        }
    }

    #[test]
    fn shrink_keeps_non_failing_schedules_intact() {
        let explorer = Explorer {
            steps_per_run: 10,
            ..Explorer::default()
        };
        let schedule = explorer.schedule_for(5);
        let shrunk = explorer.shrink(&schedule);
        assert_eq!(schedule, shrunk);
    }

    #[test]
    fn shrink_reduces_synthetic_failures() {
        // A real failing workload: dropping every flush core 0 issues
        // leaves durable metadata stale, which the end-of-run invariant
        // check catches. Shrinking must keep a reproducer, drop the
        // noise steps, and end 1-minimal.
        use cxl_pod::fault::{FaultKind, FaultRule};
        let explorer = Explorer {
            plan: FaultPlan::of(vec![FaultRule::new(FaultKind::DropFlush).on_core(0)]),
            steps_per_run: 30,
            ..Explorer::default()
        };
        // Find a failing seed (with list sanitization in recovery the
        // allocator shrugs off most dropped flushes — and empty-slab
        // hysteresis removed most descriptor-rewrite flushes from the
        // local path — so scan wide; under 1% of seeds fail now).
        let seed = (0..300u64)
            .find(|&s| explorer.run_seed(s).is_err())
            .expect("dropping all core-0 flushes must corrupt some schedule");
        let schedule = explorer.schedule_for(seed);
        let shrunk = explorer.shrink(&schedule);
        assert!(explorer.fails(&shrunk), "shrunk schedule must still fail");
        assert!(shrunk.steps.len() <= schedule.steps.len());
        // 1-minimality: removing any single remaining step passes.
        for i in 0..shrunk.steps.len() {
            let mut steps = shrunk.steps.clone();
            steps.remove(i);
            let candidate = Schedule {
                seed,
                hosts: shrunk.hosts,
                steps,
            };
            assert!(
                !explorer.fails(&candidate),
                "shrunk schedule is not 1-minimal at step {i}: {:?}",
                shrunk.steps
            );
        }
    }
}
