//! Batched remote frees and per-thread magazines (hot-path amortization).
//!
//! Both structures are *per-thread DRAM state* riding on the
//! [`ThreadHandle`](crate::ThreadHandle), in the same spirit as the
//! descriptor shadow (`shadow.rs`): they reduce CXL traffic on the hot
//! path.
//!
//! * [`RemoteFreeBuffer`] — a small table of *pending* remote frees
//!   keyed by `(heap, slab)`. The paper's §3.2.1 protocol pays one
//!   detectable mCAS on the slab's HWcc counter per freed block; the
//!   buffer accumulates up to `remote_free_batch` frees against one
//!   slab and publishes them with a *single* detectable CAS that
//!   decrements the counter by *k* (the batch width travels in the
//!   oplog record's `b` byte so recovery can redo exactly the
//!   undelivered decrement). Crash-equivalence: a batched
//!   decrement-by-k is indistinguishable from k eager decrements that
//!   were all delayed to the publish instant; the counter can never
//!   reach zero while frees sit in the buffer (each buffered free holds
//!   one of the counter's remaining credits), so no steal or slab
//!   reinitialization can race the buffered state. In recoverable mode
//!   the buffer is mirrored word-for-word into a per-thread *durable
//!   header line* at the segment tail (the [`durable`] module): every
//!   buffered free durably records the slab's new pending count, and a
//!   publish durably clears the slab's word *before* issuing its CAS.
//!   Recovery scans a dead thread's line and republishes every
//!   surviving batch, so buffered-but-unpublished frees are no longer
//!   lost (the pre-PR-5 `SLOTS × (batch-1)` bounded leak is gone).
//! * [`Magazines`] — a bounded per-class LIFO of `(slab, bit)` *hints*
//!   for recently locally-freed blocks (mimalloc-style), skipping the
//!   bitset scan of the alloc fast path. Hints are advisory: the
//!   allocator re-validates owner, class, and the bitset bit before
//!   using one, so stale hints (slab stolen, reinitialized, or emptied
//!   since) are simply discarded. On crash the magazine vanishes with
//!   the thread; its contents were free blocks in the durable bitset
//!   all along, so recovery is unchanged.

use crate::error::HeapKind;
use std::cell::{Cell, RefCell};

/// Slots in the pending-free table. Remote-free traffic concentrates on
/// few producer slabs at a time; eviction publishes early, so this only
/// bounds worst-case buffering, not correctness.
const SLOTS: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    /// `(kind_tag << 32) | (slab + 1)`; 0 marks an empty slot.
    key: u64,
    /// Frees buffered against the slab, ≥ 1 for occupied slots.
    pending: u32,
}

const EMPTY: Entry = Entry { key: 0, pending: 0 };

fn kind_tag(kind: HeapKind) -> u64 {
    match kind {
        HeapKind::Small => 1,
        HeapKind::Large => 2,
        HeapKind::Huge => unreachable!("huge allocations have no slab counters"),
    }
}

fn key_of(kind: HeapKind, slab: u32) -> u64 {
    (kind_tag(kind) << 32) | (slab as u64 + 1)
}

fn decode(key: u64) -> (HeapKind, u32) {
    let kind = match key >> 32 {
        1 => HeapKind::Small,
        2 => HeapKind::Large,
        tag => unreachable!("corrupt buffer key tag {tag}"),
    };
    (kind, (key as u32) - 1)
}

/// Per-thread bounded buffer of pending (unpublished) remote frees.
///
/// Interior-mutable and `!Sync` by construction (like `DescShadow`): it
/// belongs to exactly one thread.
#[derive(Debug)]
pub(crate) struct RemoteFreeBuffer {
    entries: [Cell<Entry>; SLOTS],
}

impl RemoteFreeBuffer {
    pub fn new() -> Self {
        RemoteFreeBuffer {
            entries: [const { Cell::new(EMPTY) }; SLOTS],
        }
    }

    /// Frees currently buffered against `(kind, slab)`.
    pub fn pending(&self, kind: HeapKind, slab: u32) -> u32 {
        let key = key_of(kind, slab);
        self.entries
            .iter()
            .find(|e| e.get().key == key)
            .map_or(0, |e| e.get().pending)
    }

    /// Records one more pending free against `(kind, slab)`. Returns the
    /// slab's new pending count, plus — when the table was full and a
    /// victim had to make room — the evicted `(kind, slab, pending)`
    /// entry, which the caller must publish.
    pub fn note(&self, kind: HeapKind, slab: u32) -> (u32, Option<(HeapKind, u32, u32)>) {
        let key = key_of(kind, slab);
        let mut free: Option<usize> = None;
        for (i, slot) in self.entries.iter().enumerate() {
            let e = slot.get();
            if e.key == key {
                let pending = e.pending + 1;
                slot.set(Entry { key, pending });
                return (pending, None);
            }
            if e.key == 0 && free.is_none() {
                free = Some(i);
            }
        }
        if let Some(i) = free {
            self.entries[i].set(Entry { key, pending: 1 });
            return (1, None);
        }
        // Full: evict the fullest entry (deterministically — ties go to
        // the lowest index) so the publish it forces amortizes best.
        let victim = self
            .entries
            .iter()
            .enumerate()
            .max_by_key(|(i, e)| (e.get().pending, usize::MAX - i))
            .expect("SLOTS > 0")
            .0;
        let evicted = self.entries[victim].get();
        self.entries[victim].set(Entry { key, pending: 1 });
        let (ekind, eslab) = decode(evicted.key);
        (1, Some((ekind, eslab, evicted.pending)))
    }

    /// Removes the entry for `(kind, slab)`, returning its pending count
    /// (0 if absent). Called immediately before publishing so a crash
    /// mid-publish cannot double-publish the batch.
    pub fn take(&self, kind: HeapKind, slab: u32) -> u32 {
        let key = key_of(kind, slab);
        for slot in &self.entries {
            let e = slot.get();
            if e.key == key {
                slot.set(EMPTY);
                return e.pending;
            }
        }
        0
    }

    /// Removes and returns any occupied entry (drain iteration).
    pub fn take_any(&self) -> Option<(HeapKind, u32, u32)> {
        for slot in &self.entries {
            let e = slot.get();
            if e.key != 0 {
                slot.set(EMPTY);
                let (kind, slab) = decode(e.key);
                return Some((kind, slab, e.pending));
            }
        }
        None
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|e| e.get().key == 0)
    }
}

/// Durable mirror of the [`RemoteFreeBuffer`]: one cacheline (8 words,
/// matching `SLOTS`) per thread at
/// [`Layout::remote_buf`](cxl_pod::Layout::remote_buf).
///
/// Each occupied word packs `key | pending << 34` with the same
/// `(kind_tag << 32) | (slab + 1)` key encoding as the DRAM buffer; a
/// zero word is an empty slot. The maintenance protocol keeps one
/// invariant recovery can rely on: **a publish CAS can only land after
/// the slab's durable word was durably cleared** (the clear's
/// store+flush+fence precedes the CAS, both ordered after the oplog
/// record). A dead thread's line therefore holds exactly the batches
/// whose decrements never reached the HWcc counter — except possibly
/// the one batch named by the thread's logged `RemoteFree*` record,
/// which the logged redo already applies and recovery's scan must skip.
pub(crate) mod durable {
    use super::{key_of, HeapKind, SLOTS};
    use crate::ctx::Ctx;
    use cxl_pod::CACHELINE;

    const KEY_BITS: u32 = 34;
    const KEY_MASK: u64 = (1 << KEY_BITS) - 1;

    /// Words per durable header line; mirrors the DRAM buffer 1:1.
    pub(crate) const WORDS: u32 = (CACHELINE / 8) as u32;
    const _: () = assert!(WORDS as usize == SLOTS);

    /// Packs an occupied durable word.
    pub(crate) fn pack(kind: HeapKind, slab: u32, pending: u32) -> u64 {
        key_of(kind, slab) | ((pending as u64) << KEY_BITS)
    }

    /// Unpacks a durable word; `None` for empty (or unrecognizable)
    /// words.
    pub(crate) fn unpack(word: u64) -> Option<(HeapKind, u32, u32)> {
        let key = word & KEY_MASK;
        let kind = match key >> 32 {
            1 => HeapKind::Small,
            2 => HeapKind::Large,
            _ => return None,
        };
        Some((kind, (key as u32).wrapping_sub(1), (word >> KEY_BITS) as u32))
    }

    /// Offset of word `i` in `ctx.tid`'s durable header line.
    pub(crate) fn word_at(ctx: &Ctx<'_>, i: u32) -> u64 {
        ctx.mem.layout().remote_buf_word_at(ctx.tid.slot(), i)
    }

    /// Durably records `pending` buffered frees against `(kind, slab)`
    /// in `ctx.tid`'s line: store + flush + fence. The line always has
    /// room because it mirrors the bounded DRAM buffer slot-for-slot.
    pub(crate) fn record(ctx: &Ctx<'_>, kind: HeapKind, slab: u32, pending: u32) {
        let off = slot_for(ctx, key_of(kind, slab));
        ctx.mem.store_u64(ctx.core, off, pack(kind, slab, pending));
        // clwb: this is the thread's own durable line, rewritten on
        // every buffered free — retaining it keeps `slot_for`'s scan of
        // the line's words hitting in cache. Recovery (the only other
        // reader) flushes its own copy before reading.
        ctx.mem.writeback(ctx.core, off, 8);
        ctx.mem.fence(ctx.core);
    }

    /// Durably clears the word for `(kind, slab)` in `ctx.tid`'s line;
    /// a no-op when absent (retried publish iterations, eager paths).
    pub(crate) fn clear(ctx: &Ctx<'_>, kind: HeapKind, slab: u32) {
        let key = key_of(kind, slab);
        for i in 0..WORDS {
            let off = word_at(ctx, i);
            if ctx.mem.load_u64(ctx.core, off) & KEY_MASK == key {
                clear_word(ctx, off);
                return;
            }
        }
    }

    /// Durably zeroes the word at `off`.
    pub(crate) fn clear_word(ctx: &Ctx<'_>, off: u64) {
        ctx.mem.store_u64(ctx.core, off, 0);
        ctx.mem.writeback(ctx.core, off, 8);
        ctx.mem.fence(ctx.core);
    }

    /// The word currently keyed `key`, or the first empty slot.
    fn slot_for(ctx: &Ctx<'_>, key: u64) -> u64 {
        let mut free = None;
        for i in 0..WORDS {
            let off = word_at(ctx, i);
            let k = ctx.mem.load_u64(ctx.core, off) & KEY_MASK;
            if k == key {
                return off;
            }
            if k == 0 && free.is_none() {
                free = Some(off);
            }
        }
        free.expect("durable line mirrors the bounded buffer; a slot is always free")
    }
}

/// Per-thread, per-class magazines of recently freed local blocks.
///
/// A magazine entry is a `(slab, bit)` *hint*; the consumer re-validates
/// it against the descriptor and bitset before use.
#[derive(Debug)]
pub(crate) struct Magazines {
    capacity: u32,
    small: RefCell<Vec<Vec<(u32, u32)>>>,
    large: RefCell<Vec<Vec<(u32, u32)>>>,
}

impl Magazines {
    /// Magazines of `capacity` hints per class (0 disables — `push` and
    /// `pop` become no-ops and the per-class vectors stay unallocated).
    pub fn new(capacity: u32) -> Self {
        let classes = |n: u32| {
            if capacity == 0 {
                Vec::new()
            } else {
                (0..n).map(|_| Vec::with_capacity(capacity as usize)).collect()
            }
        };
        Magazines {
            capacity,
            small: RefCell::new(classes(crate::class::SMALL_CLASSES_TABLE.len())),
            large: RefCell::new(classes(crate::class::LARGE_CLASSES_TABLE.len())),
        }
    }

    fn per_kind(&self, kind: HeapKind) -> &RefCell<Vec<Vec<(u32, u32)>>> {
        match kind {
            HeapKind::Small => &self.small,
            HeapKind::Large => &self.large,
            HeapKind::Huge => unreachable!("huge allocations have no size classes"),
        }
    }

    /// Offers a freed block's hint; dropped when disabled or full.
    pub fn push(&self, kind: HeapKind, class: u8, slab: u32, bit: u32) {
        if self.capacity == 0 {
            return;
        }
        let mut mags = self.per_kind(kind).borrow_mut();
        let mag = &mut mags[class as usize];
        if (mag.len() as u32) < self.capacity {
            mag.push((slab, bit));
        }
    }

    /// Takes the most recently pushed hint for `class`, if any.
    pub fn pop(&self, kind: HeapKind, class: u8) -> Option<(u32, u32)> {
        if self.capacity == 0 {
            return None;
        }
        self.per_kind(kind).borrow_mut()[class as usize].pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_accumulates_per_slab() {
        let buf = RemoteFreeBuffer::new();
        assert!(buf.is_empty());
        assert_eq!(buf.note(HeapKind::Small, 3), (1, None));
        assert_eq!(buf.note(HeapKind::Small, 3), (2, None));
        assert_eq!(buf.note(HeapKind::Large, 3), (1, None), "kinds are distinct keys");
        assert_eq!(buf.pending(HeapKind::Small, 3), 2);
        assert_eq!(buf.take(HeapKind::Small, 3), 2);
        assert_eq!(buf.pending(HeapKind::Small, 3), 0);
        assert_eq!(buf.take(HeapKind::Small, 3), 0, "take is idempotent");
        assert!(!buf.is_empty(), "large entry remains");
    }

    #[test]
    fn full_buffer_evicts_fullest_entry() {
        let buf = RemoteFreeBuffer::new();
        for slab in 0..SLOTS as u32 {
            buf.note(HeapKind::Small, slab);
        }
        buf.note(HeapKind::Small, 5);
        buf.note(HeapKind::Small, 5); // slab 5 now has pending 3
        let (count, evicted) = buf.note(HeapKind::Small, 100);
        assert_eq!(count, 1);
        assert_eq!(evicted, Some((HeapKind::Small, 5, 3)));
        assert_eq!(buf.pending(HeapKind::Small, 100), 1);
        assert_eq!(buf.pending(HeapKind::Small, 5), 0);
    }

    #[test]
    fn drain_visits_every_entry() {
        let buf = RemoteFreeBuffer::new();
        buf.note(HeapKind::Small, 1);
        buf.note(HeapKind::Small, 1);
        buf.note(HeapKind::Large, 2);
        let mut drained = Vec::new();
        while let Some(e) = buf.take_any() {
            drained.push(e);
        }
        drained.sort_by_key(|&(kind, slab, _)| (kind_tag(kind), slab));
        assert_eq!(
            drained,
            vec![(HeapKind::Small, 1, 2), (HeapKind::Large, 2, 1)]
        );
        assert!(buf.is_empty());
    }

    #[test]
    fn magazines_are_per_class_lifo_and_bounded() {
        let mags = Magazines::new(2);
        mags.push(HeapKind::Small, 4, 10, 0);
        mags.push(HeapKind::Small, 4, 10, 1);
        mags.push(HeapKind::Small, 4, 10, 2); // over capacity: dropped
        mags.push(HeapKind::Small, 5, 11, 9);
        assert_eq!(mags.pop(HeapKind::Small, 4), Some((10, 1)));
        assert_eq!(mags.pop(HeapKind::Small, 4), Some((10, 0)));
        assert_eq!(mags.pop(HeapKind::Small, 4), None);
        assert_eq!(mags.pop(HeapKind::Small, 5), Some((11, 9)));
    }

    #[test]
    fn disabled_magazines_are_inert() {
        let mags = Magazines::new(0);
        mags.push(HeapKind::Small, 0, 1, 2);
        assert_eq!(mags.pop(HeapKind::Small, 0), None);
    }
}
