//! Batched remote frees and per-thread magazines (hot-path amortization).
//!
//! Both structures are *volatile, per-thread DRAM state* riding on the
//! [`ThreadHandle`](crate::ThreadHandle), in the same spirit as the
//! descriptor shadow (`shadow.rs`): they reduce CXL traffic without
//! adding any durable state that recovery would have to repair.
//!
//! * [`RemoteFreeBuffer`] — a small table of *pending* remote frees
//!   keyed by `(heap, slab)`. The paper's §3.2.1 protocol pays one
//!   detectable mCAS on the slab's HWcc counter per freed block; the
//!   buffer accumulates up to `remote_free_batch` frees against one
//!   slab and publishes them with a *single* detectable CAS that
//!   decrements the counter by *k* (the batch width travels in the
//!   oplog record's `b` byte so recovery can redo exactly the
//!   undelivered decrement). Crash-equivalence: a batched
//!   decrement-by-k is indistinguishable from k eager decrements that
//!   were all delayed to the publish instant; the counter can never
//!   reach zero while frees sit in the buffer (each buffered free holds
//!   one of the counter's remaining credits), so no steal or slab
//!   reinitialization can race the buffered state. Frees that are
//!   buffered but unpublished when the thread dies are lost — a
//!   bounded leak of at most `SLOTS × (batch-1)` blocks, documented in
//!   ROADMAP.md's open items.
//! * [`Magazines`] — a bounded per-class LIFO of `(slab, bit)` *hints*
//!   for recently locally-freed blocks (mimalloc-style), skipping the
//!   bitset scan of the alloc fast path. Hints are advisory: the
//!   allocator re-validates owner, class, and the bitset bit before
//!   using one, so stale hints (slab stolen, reinitialized, or emptied
//!   since) are simply discarded. On crash the magazine vanishes with
//!   the thread; its contents were free blocks in the durable bitset
//!   all along, so recovery is unchanged.

use crate::error::HeapKind;
use std::cell::{Cell, RefCell};

/// Slots in the pending-free table. Remote-free traffic concentrates on
/// few producer slabs at a time; eviction publishes early, so this only
/// bounds worst-case buffering, not correctness.
const SLOTS: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    /// `(kind_tag << 32) | (slab + 1)`; 0 marks an empty slot.
    key: u64,
    /// Frees buffered against the slab, ≥ 1 for occupied slots.
    pending: u32,
}

const EMPTY: Entry = Entry { key: 0, pending: 0 };

fn kind_tag(kind: HeapKind) -> u64 {
    match kind {
        HeapKind::Small => 1,
        HeapKind::Large => 2,
        HeapKind::Huge => unreachable!("huge allocations have no slab counters"),
    }
}

fn key_of(kind: HeapKind, slab: u32) -> u64 {
    (kind_tag(kind) << 32) | (slab as u64 + 1)
}

fn decode(key: u64) -> (HeapKind, u32) {
    let kind = match key >> 32 {
        1 => HeapKind::Small,
        2 => HeapKind::Large,
        tag => unreachable!("corrupt buffer key tag {tag}"),
    };
    (kind, (key as u32) - 1)
}

/// Per-thread bounded buffer of pending (unpublished) remote frees.
///
/// Interior-mutable and `!Sync` by construction (like `DescShadow`): it
/// belongs to exactly one thread.
#[derive(Debug)]
pub(crate) struct RemoteFreeBuffer {
    entries: [Cell<Entry>; SLOTS],
}

impl RemoteFreeBuffer {
    pub fn new() -> Self {
        RemoteFreeBuffer {
            entries: [const { Cell::new(EMPTY) }; SLOTS],
        }
    }

    /// Frees currently buffered against `(kind, slab)`.
    pub fn pending(&self, kind: HeapKind, slab: u32) -> u32 {
        let key = key_of(kind, slab);
        self.entries
            .iter()
            .find(|e| e.get().key == key)
            .map_or(0, |e| e.get().pending)
    }

    /// Records one more pending free against `(kind, slab)`. Returns the
    /// slab's new pending count, plus — when the table was full and a
    /// victim had to make room — the evicted `(kind, slab, pending)`
    /// entry, which the caller must publish.
    pub fn note(&self, kind: HeapKind, slab: u32) -> (u32, Option<(HeapKind, u32, u32)>) {
        let key = key_of(kind, slab);
        let mut free: Option<usize> = None;
        for (i, slot) in self.entries.iter().enumerate() {
            let e = slot.get();
            if e.key == key {
                let pending = e.pending + 1;
                slot.set(Entry { key, pending });
                return (pending, None);
            }
            if e.key == 0 && free.is_none() {
                free = Some(i);
            }
        }
        if let Some(i) = free {
            self.entries[i].set(Entry { key, pending: 1 });
            return (1, None);
        }
        // Full: evict the fullest entry (deterministically — ties go to
        // the lowest index) so the publish it forces amortizes best.
        let victim = self
            .entries
            .iter()
            .enumerate()
            .max_by_key(|(i, e)| (e.get().pending, usize::MAX - i))
            .expect("SLOTS > 0")
            .0;
        let evicted = self.entries[victim].get();
        self.entries[victim].set(Entry { key, pending: 1 });
        let (ekind, eslab) = decode(evicted.key);
        (1, Some((ekind, eslab, evicted.pending)))
    }

    /// Removes the entry for `(kind, slab)`, returning its pending count
    /// (0 if absent). Called immediately before publishing so a crash
    /// mid-publish cannot double-publish the batch.
    pub fn take(&self, kind: HeapKind, slab: u32) -> u32 {
        let key = key_of(kind, slab);
        for slot in &self.entries {
            let e = slot.get();
            if e.key == key {
                slot.set(EMPTY);
                return e.pending;
            }
        }
        0
    }

    /// Removes and returns any occupied entry (drain iteration).
    pub fn take_any(&self) -> Option<(HeapKind, u32, u32)> {
        for slot in &self.entries {
            let e = slot.get();
            if e.key != 0 {
                slot.set(EMPTY);
                let (kind, slab) = decode(e.key);
                return Some((kind, slab, e.pending));
            }
        }
        None
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|e| e.get().key == 0)
    }
}

/// Per-thread, per-class magazines of recently freed local blocks.
///
/// A magazine entry is a `(slab, bit)` *hint*; the consumer re-validates
/// it against the descriptor and bitset before use.
#[derive(Debug)]
pub(crate) struct Magazines {
    capacity: u32,
    small: RefCell<Vec<Vec<(u32, u32)>>>,
    large: RefCell<Vec<Vec<(u32, u32)>>>,
}

impl Magazines {
    /// Magazines of `capacity` hints per class (0 disables — `push` and
    /// `pop` become no-ops and the per-class vectors stay unallocated).
    pub fn new(capacity: u32) -> Self {
        let classes = |n: u32| {
            if capacity == 0 {
                Vec::new()
            } else {
                (0..n).map(|_| Vec::with_capacity(capacity as usize)).collect()
            }
        };
        Magazines {
            capacity,
            small: RefCell::new(classes(crate::class::SMALL_CLASSES_TABLE.len())),
            large: RefCell::new(classes(crate::class::LARGE_CLASSES_TABLE.len())),
        }
    }

    fn per_kind(&self, kind: HeapKind) -> &RefCell<Vec<Vec<(u32, u32)>>> {
        match kind {
            HeapKind::Small => &self.small,
            HeapKind::Large => &self.large,
            HeapKind::Huge => unreachable!("huge allocations have no size classes"),
        }
    }

    /// Offers a freed block's hint; dropped when disabled or full.
    pub fn push(&self, kind: HeapKind, class: u8, slab: u32, bit: u32) {
        if self.capacity == 0 {
            return;
        }
        let mut mags = self.per_kind(kind).borrow_mut();
        let mag = &mut mags[class as usize];
        if (mag.len() as u32) < self.capacity {
            mag.push((slab, bit));
        }
    }

    /// Takes the most recently pushed hint for `class`, if any.
    pub fn pop(&self, kind: HeapKind, class: u8) -> Option<(u32, u32)> {
        if self.capacity == 0 {
            return None;
        }
        self.per_kind(kind).borrow_mut()[class as usize].pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_accumulates_per_slab() {
        let buf = RemoteFreeBuffer::new();
        assert!(buf.is_empty());
        assert_eq!(buf.note(HeapKind::Small, 3), (1, None));
        assert_eq!(buf.note(HeapKind::Small, 3), (2, None));
        assert_eq!(buf.note(HeapKind::Large, 3), (1, None), "kinds are distinct keys");
        assert_eq!(buf.pending(HeapKind::Small, 3), 2);
        assert_eq!(buf.take(HeapKind::Small, 3), 2);
        assert_eq!(buf.pending(HeapKind::Small, 3), 0);
        assert_eq!(buf.take(HeapKind::Small, 3), 0, "take is idempotent");
        assert!(!buf.is_empty(), "large entry remains");
    }

    #[test]
    fn full_buffer_evicts_fullest_entry() {
        let buf = RemoteFreeBuffer::new();
        for slab in 0..SLOTS as u32 {
            buf.note(HeapKind::Small, slab);
        }
        buf.note(HeapKind::Small, 5);
        buf.note(HeapKind::Small, 5); // slab 5 now has pending 3
        let (count, evicted) = buf.note(HeapKind::Small, 100);
        assert_eq!(count, 1);
        assert_eq!(evicted, Some((HeapKind::Small, 5, 3)));
        assert_eq!(buf.pending(HeapKind::Small, 100), 1);
        assert_eq!(buf.pending(HeapKind::Small, 5), 0);
    }

    #[test]
    fn drain_visits_every_entry() {
        let buf = RemoteFreeBuffer::new();
        buf.note(HeapKind::Small, 1);
        buf.note(HeapKind::Small, 1);
        buf.note(HeapKind::Large, 2);
        let mut drained = Vec::new();
        while let Some(e) = buf.take_any() {
            drained.push(e);
        }
        drained.sort_by_key(|&(kind, slab, _)| (kind_tag(kind), slab));
        assert_eq!(
            drained,
            vec![(HeapKind::Small, 1, 2), (HeapKind::Large, 2, 1)]
        );
        assert!(buf.is_empty());
    }

    #[test]
    fn magazines_are_per_class_lifo_and_bounded() {
        let mags = Magazines::new(2);
        mags.push(HeapKind::Small, 4, 10, 0);
        mags.push(HeapKind::Small, 4, 10, 1);
        mags.push(HeapKind::Small, 4, 10, 2); // over capacity: dropped
        mags.push(HeapKind::Small, 5, 11, 9);
        assert_eq!(mags.pop(HeapKind::Small, 4), Some((10, 1)));
        assert_eq!(mags.pop(HeapKind::Small, 4), Some((10, 0)));
        assert_eq!(mags.pop(HeapKind::Small, 4), None);
        assert_eq!(mags.pop(HeapKind::Small, 5), Some((11, 9)));
    }

    #[test]
    fn disabled_magazines_are_inert() {
        let mags = Magazines::new(0);
        mags.push(HeapKind::Small, 0, 1, 2);
        assert_eq!(mags.pop(HeapKind::Small, 0), None);
    }
}
