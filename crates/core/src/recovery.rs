//! Non-blocking crash recovery (paper §3.4).
//!
//! A crashed thread's 8-byte log word names the operation it was inside;
//! recovery redoes that operation idempotently from durable ground truth:
//!
//! * **Block-level ops** (`AllocBlock`, `FreeLocal`) are normalized from
//!   the slab's bitset: the free count is recomputed, the slab is
//!   re-linked to the list its fullness dictates, and an interrupted
//!   allocation is rolled back unless the application demonstrably
//!   received the pointer (the *detectable allocation* destination cell,
//!   the same idea Memento-style recoverable structures rely on).
//! * **Detectable-CAS ops** (`Extend`, `PopGlobal`, `PushGlobal`,
//!   `RemoteFree*`, `HugeClaim`) query [`Dcas::detect`](crate::dcas::Dcas::detect) to learn whether
//!   the crashed CAS took effect, then either complete the operation's
//!   post-actions or redo it.
//! * **Huge-heap ops** roll back an un-handed-out allocation (by marking
//!   the descriptor free, letting normal cleanup reclaim it) and roll
//!   frees and cleanups forward.
//!
//! Recovery never blocks live threads: it touches only the dead thread's
//! single-writer structures plus lock-free cells, exactly like a normal
//! operation. Recovery is itself crash-tolerant — every step is
//! idempotent, so a crashed recovery can simply be re-run.

use crate::ctx::Ctx;
use crate::error::HeapKind;
use crate::huge::HugeHeap;
use crate::slab::SlabHeap;

/// Operation codes stored in the log word. Slab ops are tagged with the
/// heap they apply to via [`Op::encode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Op {
    /// No operation in flight.
    Idle = 0,
    /// Heap extension: `a` = expected length, `c` = dcas version.
    Extend = 1,
    /// Global free-list pop: `a` = slab, `c` = version.
    PopGlobal = 2,
    /// Global free-list push: `a` = slab, `c` = version.
    PushGlobal = 3,
    /// Slab initialization / unsized→sized transfer: `a` = slab, `b` =
    /// class.
    InitSlab = 4,
    /// Block allocation: `a` = slab, `b` = class, `c` = bit, aux0 =
    /// detect destination.
    AllocBlock = 5,
    /// Local free: `a` = slab, `b` = class, `c` = bit.
    FreeLocal = 6,
    /// Remote free (not reaching zero): `a` = slab, `b` = batch width
    /// (0 on the eager path, meaning 1), `c` = version.
    RemoteFree = 7,
    /// Remote free reaching zero (steal): `a` = slab, `b` = batch
    /// width as above, `c` = version.
    RemoteFreeLast = 8,
    /// Flat-combined remote free (not reaching zero): `a` = slab, `b` =
    /// combined batch width, `c` = version, aux0 = the claimed
    /// combiner-request slots packed as four 16-bit `slot + 1` fields.
    RemoteFreeComb = 9,
    /// Flat-combined remote free reaching zero (steal): fields as
    /// [`Op::RemoteFreeComb`].
    RemoteFreeCombLast = 10,
    /// Huge allocation: aux = `[desc_off, data_off, size]`.
    HugeAlloc = 13,
    /// Huge free: aux = `[desc_off]`.
    HugeFree = 14,
    /// Reservation claim: `a` = region, `c` = version.
    HugeClaim = 15,
    /// Huge descriptor reclamation: aux = `[desc_off]`.
    HugeCleanup = 16,
}

/// Bit set in the encoded op byte for large-heap operations.
const LARGE_BIT: u8 = 0x40;

impl Op {
    /// Encodes with the heap tag.
    pub fn encode(self, kind: HeapKind) -> u8 {
        match kind {
            HeapKind::Small | HeapKind::Huge => self as u8,
            HeapKind::Large => self as u8 | LARGE_BIT,
        }
    }

    /// Decodes an op byte into the operation and its heap.
    pub fn decode(raw: u8) -> Option<(Op, HeapKind)> {
        let kind = if raw & LARGE_BIT != 0 {
            HeapKind::Large
        } else {
            HeapKind::Small
        };
        let op = match raw & !LARGE_BIT {
            0 => Op::Idle,
            1 => Op::Extend,
            2 => Op::PopGlobal,
            3 => Op::PushGlobal,
            4 => Op::InitSlab,
            5 => Op::AllocBlock,
            6 => Op::FreeLocal,
            7 => Op::RemoteFree,
            8 => Op::RemoteFreeLast,
            9 => Op::RemoteFreeComb,
            10 => Op::RemoteFreeCombLast,
            13 => Op::HugeAlloc,
            14 => Op::HugeFree,
            15 => Op::HugeClaim,
            16 => Op::HugeCleanup,
            _ => return None,
        };
        let kind = match op {
            Op::HugeAlloc | Op::HugeFree | Op::HugeClaim | Op::HugeCleanup => HeapKind::Huge,
            _ => kind,
        };
        Some((op, kind))
    }
}

/// What recovery found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The interrupted operation, if any.
    pub interrupted: Option<(Op, HeapKind)>,
    /// Human-readable outcome.
    pub outcome: &'static str,
    /// Offset of a block that was allocated but never handed to the
    /// application *and* had no detect destination — the application (or
    /// harness) may reclaim it. `None` when recovery rolled the
    /// allocation back itself.
    pub lost_block: Option<u64>,
}

impl RecoveryReport {
    fn clean(outcome: &'static str) -> Self {
        RecoveryReport {
            interrupted: None,
            outcome,
            lost_block: None,
        }
    }
}

/// Runs recovery for the thread owning `ctx.tid` (a *dead* thread; the
/// context's core and process belong to the recovering thread).
pub(crate) fn recover(ctx: &Ctx<'_>) -> RecoveryReport {
    // Structural repair precedes the logged-op redo. The dead thread
    // mutated its list heads and `next` links through its private SWcc
    // cache and only published slab descriptors at linearization
    // points, so the durable image of its private lists mixes epochs:
    // a head may still name a slab whose flushed descriptor says full
    // or disowned, and links may run into foreign chains. The redo log
    // cannot help — it covers only the one interrupted operation —
    // so the lists are validated wholesale against the flushed
    // descriptors and bitmaps (the durable ground truth). This also
    // guarantees the redo below walks clean, acyclic lists.
    sanitize_slab_lists(ctx, &SlabHeap::small());
    sanitize_slab_lists(ctx, &SlabHeap::large());
    let log = ctx.log();
    let entry = log.read(ctx.core);
    // The durable-buffer scan must skip batches another durable
    // representation already covers, evaluated *before* any redo
    // mutates that state:
    //
    // * The dead thread's own combiner-request word, when non-EMPTY,
    //   names a batch that superseded the slab's `remote_buf` word (the
    //   post precedes the durable clear; a crash in between leaves
    //   both). The request word wins; the scan must not double-publish.
    // * A `RemoteFree*` record whose CAS never landed is applied by the
    //   logged redo. The detect must run before the redo reruns the CAS
    //   with a newer version (which makes the logged version
    //   undetectable).
    let mut scan_skips: Vec<(HeapKind, u32)> = Vec::new();
    if ctx.recoverable {
        let own = crate::comb::read_word(ctx.mem, ctx.tid.slot());
        if crate::comb::state_nonempty(own) {
            if let Some(kind) = crate::comb::kind_of(own) {
                scan_skips.push((kind, crate::comb::slab_of(own)));
            }
        }
    }
    let Some((op, kind)) = Op::decode(entry.word.op) else {
        log.clear(ctx.core);
        resolve_combiner_claims(ctx);
        republish_remote_buffer(ctx, &scan_skips);
        flush_thread_lines(ctx);
        return RecoveryReport::clean("unknown op cleared");
    };
    if op == Op::Idle {
        resolve_combiner_claims(ctx);
        republish_remote_buffer(ctx, &scan_skips);
        flush_thread_lines(ctx);
        return RecoveryReport::clean("idle");
    }
    if matches!(op, Op::RemoteFree | Op::RemoteFreeLast) && kind != HeapKind::Huge {
        let heap = SlabHeap::of(kind);
        let cell = heap.hl(ctx.mem).hwcc_desc_at(entry.word.a);
        if !ctx.dcas().detect(ctx.core, cell, ctx.tid, entry.word.c) {
            scan_skips.push((kind, entry.word.a));
        }
    }
    let mut report = RecoveryReport {
        interrupted: Some((op, kind)),
        outcome: "redone",
        lost_block: None,
    };
    match kind {
        HeapKind::Small | HeapKind::Large => {
            let heap = if kind == HeapKind::Small {
                SlabHeap::small()
            } else {
                SlabHeap::large()
            };
            recover_slab(ctx, &heap, op, &entry, &mut report);
        }
        HeapKind::Huge => recover_huge(ctx, op, &entry, &mut report),
    }
    // Resolve combiner-request words the logged redo did not cover
    // (unlogged claims, posted-but-unclaimed batches), then republish
    // batched remote frees the dead thread had buffered but not yet
    // published. Both run their own logged publishes, so they must
    // precede the final log clear only in program order — each publish
    // leaves the log idle again.
    resolve_combiner_claims(ctx);
    republish_remote_buffer(ctx, &scan_skips);
    log.clear(ctx.core);
    // Everything recovery wrote must be durable before the slot is
    // reused: flush the thread's local-head lines.
    flush_thread_lines(ctx);
    report
}

/// Resolves the flat-combining protocol's durable request words after a
/// crash (idempotent; a re-run recovery finds released words and does
/// nothing):
///
/// * The dead thread's **own word** still POSTED: no winner claimed the
///   batch. Atomically take it back (CAS, because a live winner may
///   claim concurrently) and publish it directly.
/// * Own word CLAIMED **by the dead thread itself**: it won its own
///   claim but crashed before logging the combined publish (a logged
///   publish releases the word in its redo arm). Publish directly.
/// * Own word CLAIMED by **another** thread: the batch is in that
///   winner's custody — leave it; the winner (or its recovery) both
///   publishes and DONE-marks it.
/// * Own word DONE: already published by its winner; just release it.
/// * **Another slot's word** CLAIMED by the dead thread without a
///   logged combined record: the dead thread took custody but the
///   combined CAS demonstrably never happened (a logged one is redone
///   and released by [`recover_slab`] before this scan). Publish the
///   contributor's batch directly and DONE-mark their word so their
///   wait loop completes.
fn resolve_combiner_claims(ctx: &Ctx<'_>) {
    use crate::comb;
    if !ctx.recoverable {
        return;
    }
    let me = ctx.tid.slot();
    let me_raw = ctx.tid.raw();
    let own = comb::read_word(ctx.mem, me);
    if comb::is_posted(own) {
        // A live winner may race this take-back; the CAS arbitrates.
        if comb::take_posted(ctx.mem, me, own) {
            if let Some(kind) = comb::kind_of(own) {
                SlabHeap::of(kind).publish_remote_frees(ctx, comb::slab_of(own), comb::k_of(own));
            }
        }
    } else if comb::is_claimed_by(own, me_raw) {
        if let Some(kind) = comb::kind_of(own) {
            SlabHeap::of(kind).publish_remote_frees(ctx, comb::slab_of(own), comb::k_of(own));
        }
        comb::write_word(ctx.mem, me, comb::EMPTY_WORD);
    } else if comb::state(own) == comb::DONE_STATE {
        comb::write_word(ctx.mem, me, comb::EMPTY_WORD);
    }
    for slot in 0..ctx.mem.layout().max_threads {
        if slot == me {
            continue;
        }
        let w = comb::read_word(ctx.mem, slot);
        if !comb::is_claimed_by(w, me_raw) {
            continue;
        }
        if let Some(kind) = comb::kind_of(w) {
            SlabHeap::of(kind).publish_remote_frees(ctx, comb::slab_of(w), comb::k_of(w));
        }
        // Only the claim winner writes a CLAIMED word, and the winner is
        // dead: a plain DONE-mark store cannot race the contributor's
        // read-only wait loop.
        comb::write_word(ctx.mem, slot, comb::done_word(w, me_raw));
    }
}

/// Scans the dead thread's durable remote-free header line and
/// republishes every batch whose decrement never reached its HWcc
/// counter. `skips` names batches another durable representation
/// already covers — the thread's logged `RemoteFree*` redo, or its own
/// combiner-request word: those words are cleared without republishing
/// (publishing again would double-decrement the counter). Closes the
/// pre-PR-5 `SLOTS × (batch − 1)` leak of buffered-but-unpublished
/// frees.
fn republish_remote_buffer(ctx: &Ctx<'_>, skips: &[(HeapKind, u32)]) {
    use crate::remote::durable;
    if !ctx.recoverable {
        return;
    }
    let layout = ctx.mem.layout();
    let line = layout.remote_buf_at(ctx.tid.slot());
    // Drop any stale view the recovering core holds of the line before
    // reading the durable image.
    ctx.mem.flush(ctx.core, line, cxl_pod::CACHELINE);
    ctx.mem.fence(ctx.core);
    for i in 0..durable::WORDS {
        let off = durable::word_at(ctx, i);
        let word = ctx.mem.load_u64(ctx.core, off);
        let Some((kind, slab, pending)) = durable::unpack(word) else {
            continue;
        };
        if skips.contains(&(kind, slab)) || pending == 0 {
            durable::clear_word(ctx, off);
            continue;
        }
        // The publish durably clears the slab's word before its CAS (or
        // on the zero-counter drop path), so the line is empty once the
        // loop completes.
        SlabHeap::of(kind).publish_remote_frees(ctx, slab, pending);
    }
}

/// Flushes the dead thread's local free-list heads so repairs are
/// durable (the recovering core wrote them through its own cache).
fn flush_thread_lines(ctx: &Ctx<'_>) {
    let layout = ctx.mem.layout();
    let slot = ctx.tid.slot();
    ctx.mem.flush(
        ctx.core,
        layout.small.local_unsized_at(slot),
        layout.small.local_stride,
    );
    ctx.mem.flush(
        ctx.core,
        layout.large.local_unsized_at(slot),
        layout.large.local_stride,
    );
    ctx.mem.flush(
        ctx.core,
        layout.huge.local_descs_at(slot),
        layout.huge.local_stride,
    );
    ctx.mem.fence(ctx.core);
}

/// Restores the dead thread's private free lists of `heap` to a state
/// satisfying the list invariants, using only durable data.
fn sanitize_slab_lists(ctx: &Ctx<'_>, heap: &SlabHeap) {
    let hl = heap.hl(ctx.mem);
    // Drop any lines the recoverer itself may hold over the thread's
    // heads before reading the durable image.
    ctx.mem.flush(
        ctx.core,
        hl.local_unsized_at(ctx.tid.slot()),
        hl.local_stride,
    );
    ctx.mem.fence(ctx.core);
    let classes = hl.num_classes as u8;
    sanitize_list(ctx, heap, heap.unsized_head_off(ctx), None);
    for class in 0..classes {
        sanitize_list(ctx, heap, heap.sized_head_off(ctx, class), Some(class));
    }
}

/// Walks one private list in durable state and unlinks every node that
/// does not belong there (`class` is `None` for the unsized list).
/// Kept sized nodes get their free count recomputed from the durable
/// bitmap; nodes the bitmap shows full are unlinked and re-detached.
/// Unlinking rewrites only the head or the previous *kept* node's
/// `next`, never a foreign header, so chains that strayed into another
/// list's slabs drain without corrupting that list. Unmapped indices
/// and revisits (stale links can tie cycles) truncate the remainder.
fn sanitize_list(ctx: &Ctx<'_>, heap: &SlabHeap, head_off: u64, class: Option<u8>) {
    let hl = heap.hl(ctx.mem);
    let len = heap.len(ctx.mem, ctx.core);
    let tid_raw = ctx.tid.raw();
    let mut seen = vec![false; len as usize];
    let mut prev: Option<u32> = None;
    let mut cursor = (ctx.mem.load_u64(ctx.core, head_off) as u32).checked_sub(1);
    while let Some(slab) = cursor {
        if slab >= len || seen[slab as usize] {
            unlink_after(ctx, heap, head_off, prev, 0);
            return;
        }
        seen[slab as usize] = true;
        ctx.mem
            .flush(ctx.core, hl.swcc_desc_at(slab), hl.swcc_desc_stride);
        ctx.mem.fence(ctx.core);
        let header = heap.header(ctx, slab);
        let sized = header.flags & crate::cell::flags::SIZED != 0;
        let mut keep = header.owner == tid_raw
            && match class {
                None => !sized,
                Some(c) => sized && header.class == c,
            };
        if keep {
            if let Some(c) = class {
                let free = heap.bits(ctx, slab, c).count_set(ctx.core);
                heap.set_free_count(ctx, slab, free);
                if free == 0 {
                    // Durably full: the owner's unlink + detach never
                    // became durable. Finish it.
                    heap.full_transition(ctx, slab, c);
                    keep = false;
                } else {
                    heap.flush_desc(ctx, slab);
                }
            }
        }
        if keep {
            prev = Some(slab);
        } else {
            unlink_after(ctx, heap, head_off, prev, header.next);
        }
        cursor = header.next.checked_sub(1);
    }
}

/// Points the list at `head_off` past an unlinked node: rewrites the
/// head (no kept predecessor) or the previous kept node's `next`.
fn unlink_after(ctx: &Ctx<'_>, heap: &SlabHeap, head_off: u64, prev: Option<u32>, next_raw: u32) {
    match prev {
        None => ctx.mem.store_u64(ctx.core, head_off, next_raw as u64),
        Some(p) => {
            let mut ph = heap.header(ctx, p);
            ph.next = next_raw;
            heap.set_header(ctx, p, ph);
            heap.flush_desc(ctx, p);
        }
    }
}

/// Flushes (invalidates) the recovering core's view of the dead thread's
/// slab descriptor and list heads before reading them — the recoverer
/// may hold stale cached lines.
fn refresh_slab_view(ctx: &Ctx<'_>, heap: &SlabHeap, slab: u32) {
    let hl = heap.hl(ctx.mem);
    ctx.mem
        .flush(ctx.core, hl.swcc_desc_at(slab), hl.swcc_desc_stride);
    ctx.mem.flush(
        ctx.core,
        hl.local_unsized_at(ctx.tid.slot()),
        hl.local_stride,
    );
    ctx.mem.fence(ctx.core);
}

fn recover_slab(
    ctx: &Ctx<'_>,
    heap: &SlabHeap,
    op: Op,
    entry: &crate::oplog::LogEntry,
    report: &mut RecoveryReport,
) {
    let hl = heap.hl(ctx.mem);
    let dcas = ctx.dcas();
    let slab = entry.word.a;
    let version = entry.word.c;
    match op {
        Op::Idle => {}
        Op::Extend => {
            if dcas.detect(ctx.core, hl.global_len, ctx.tid, version) {
                // The CAS landed: slab `a` is ours and orphaned.
                refresh_slab_view(ctx, heap, slab);
                heap.map_upto(ctx, slab as u64 + 1);
                park_orphan(ctx, heap, slab);
                report.outcome = "extend completed; slab parked on unsized list";
            } else {
                report.outcome = "extend had not happened";
            }
        }
        Op::PopGlobal => {
            // The stripe the crashed CAS targeted travels in `b`; the
            // modulo tolerates a record written under a different
            // stripe count (impossible within one pod, but cheap).
            let head = hl.global_free_at(entry.word.b as u32 % hl.global_stripes);
            if dcas.detect(ctx.core, head, ctx.tid, version) {
                refresh_slab_view(ctx, heap, slab);
                park_orphan(ctx, heap, slab);
                report.outcome = "pop completed; slab parked on unsized list";
            } else {
                report.outcome = "pop had not happened";
            }
        }
        Op::PushGlobal => {
            refresh_slab_view(ctx, heap, slab);
            let head = hl.global_free_at(entry.word.b as u32 % hl.global_stripes);
            if dcas.detect(ctx.core, head, ctx.tid, version) {
                // The slab is on the global list; it must not also be on
                // any of our private lists (the pop precedes the CAS,
                // but be defensive — and a stale sized-list link from a
                // lost cached epoch may still be durable).
                unlink_local_everywhere(ctx, heap, slab);
                report.outcome = "push completed";
            } else if heap.contains_local(ctx, heap.unsized_head_off(ctx), slab) {
                // Crash before the pop: nothing happened.
                report.outcome = "push had not happened";
            } else {
                // Popped but not pushed: complete the push.
                heap.push_global(ctx, slab);
                report.outcome = "push redone";
            }
        }
        Op::InitSlab => {
            refresh_slab_view(ctx, heap, slab);
            unlink_local_everywhere(ctx, heap, slab);
            heap.init_slab_body(ctx, slab, entry.word.b);
            heap.flush_desc(ctx, slab);
            report.outcome = "init redone";
        }
        Op::AllocBlock => {
            refresh_slab_view(ctx, heap, slab);
            let class = entry.word.b;
            let bit = entry.word.c as u32;
            let bits = heap.bits(ctx, slab, class);
            if !bits.get(ctx.core, bit) {
                // The block was allocated. Did the application get the
                // pointer? Only if the detect destination holds it.
                let block_off =
                    hl.slab_data_at(slab) + bit as u64 * heap.classes.block_size(class) as u64;
                let dst = entry.aux[0];
                let delivered = dst != 0
                    && ctx.mem.segment().atomic_u64(dst).load(std::sync::atomic::Ordering::SeqCst)
                        == block_off;
                if delivered {
                    report.outcome = "allocation delivered; kept";
                } else if dst != 0 {
                    bits.set(ctx.core, bit);
                    report.outcome = "allocation rolled back";
                } else {
                    // No detect destination: we cannot prove the app
                    // didn't get it. Keep it allocated, report it.
                    report.lost_block = Some(block_off);
                    report.outcome = "allocation kept; reported as lost";
                }
            } else {
                report.outcome = "allocation had not happened";
            }
            normalize_slab(ctx, heap, slab, class);
        }
        Op::FreeLocal => {
            refresh_slab_view(ctx, heap, slab);
            let class = entry.word.b;
            let bit = entry.word.c as u32;
            // Redo: the target state is "block free".
            heap.bits(ctx, slab, class).set(ctx.core, bit);
            normalize_slab(ctx, heap, slab, class);
            report.outcome = "free redone";
        }
        Op::RemoteFree | Op::RemoteFreeLast => {
            let cell = hl.hwcc_desc_at(slab);
            if dcas.detect(ctx.core, cell, ctx.tid, version) {
                if op == Op::RemoteFreeLast {
                    refresh_slab_view(ctx, heap, slab);
                    if !heap.contains_local(ctx, heap.unsized_head_off(ctx), slab) {
                        heap.steal(ctx, slab);
                    }
                    heap.flush_desc(ctx, slab);
                    report.outcome = "final remote free completed; slab stolen";
                } else {
                    report.outcome = "remote free completed";
                }
            } else {
                // The decrement never landed: redo it, by the logged
                // batch width (eager records carry b = 0, meaning 1).
                redo_remote_free(ctx, heap, slab, (entry.word.b as u32).max(1));
                report.outcome = "remote free redone";
            }
        }
        Op::RemoteFreeComb | Op::RemoteFreeCombLast => {
            let cell = hl.hwcc_desc_at(slab);
            if dcas.detect(ctx.core, cell, ctx.tid, version) {
                if op == Op::RemoteFreeCombLast {
                    refresh_slab_view(ctx, heap, slab);
                    if !heap.contains_local(ctx, heap.unsized_head_off(ctx), slab) {
                        heap.steal(ctx, slab);
                    }
                    heap.flush_desc(ctx, slab);
                }
                report.outcome = "combined remote free completed";
            } else {
                // The combined decrement never landed: redo it by the
                // logged combined width (steals internally on last).
                redo_remote_free(ctx, heap, slab, (entry.word.b as u32).max(1));
                report.outcome = "combined remote free redone";
            }
            // Either way the logged batch is fully applied: release
            // every contributor word the record claimed (DONE-mark
            // theirs, clear our own) so no later scan republishes them.
            release_logged_claims(ctx, entry.aux[0]);
        }
        _ => unreachable!("huge ops dispatched separately"),
    }
}

/// Releases the combiner-request words a redone `RemoteFreeComb*`
/// record claimed: `packed` holds up to four 16-bit `slot + 1` fields
/// (0 = unused). Idempotent — a word that is no longer CLAIMED by the
/// dead thread (a previous recovery pass already released it, or the
/// contributor reclaimed theirs) is left alone.
fn release_logged_claims(ctx: &Ctx<'_>, packed: u64) {
    use crate::comb;
    let me = ctx.tid.slot();
    let me_raw = ctx.tid.raw();
    for i in 0..comb::MAX_CLAIM {
        let field = (packed >> (i * 16)) & 0xFFFF;
        let Some(slot) = (field as u32).checked_sub(1) else {
            continue;
        };
        let w = comb::read_word(ctx.mem, slot);
        if !comb::is_claimed_by(w, me_raw) {
            continue;
        }
        if slot == me {
            comb::write_word(ctx.mem, slot, comb::EMPTY_WORD);
        } else {
            comb::write_word(ctx.mem, slot, comb::done_word(w, me_raw));
        }
    }
}

/// Parks an orphaned, freshly acquired slab on the dead thread's unsized
/// list (idempotent).
fn park_orphan(ctx: &Ctx<'_>, heap: &SlabHeap, slab: u32) {
    if heap.contains_local(ctx, heap.unsized_head_off(ctx), slab) {
        return;
    }
    // A reacquired slab may still carry a stale sized-list link from a
    // lost cached epoch of this same thread; clear it before parking.
    unlink_local_everywhere(ctx, heap, slab);
    heap.set_header(ctx, slab, crate::cell::SwccHeader {
        next: 0,
        owner: ctx.tid.raw(),
        class: 0,
        flags: 0,
    });
    heap.set_free_count(ctx, slab, 0);
    heap.push_local(ctx, heap.unsized_head_off(ctx), slab);
    heap.flush_desc(ctx, slab);
}

/// Unlinks `slab` from every one of the dead thread's local lists —
/// all sized lists plus the unsized list.
///
/// The logged class alone does not say which list the slab durably sits
/// on: the dead thread's cached relinks are lost with its cache, so a
/// slab that migrated classes (sized A → unsized → sized B) can still
/// be on the *old* class's list in the durable image while the pending
/// log entry names the new class. Only the dead thread's own lists can
/// be stale like this — ownership transfers flush + fence — so a scan
/// of its private heads is exhaustive.
fn unlink_local_everywhere(ctx: &Ctx<'_>, heap: &SlabHeap, slab: u32) {
    for class in 0..heap.classes.len() {
        heap.remove_local(ctx, heap.sized_head_off(ctx, class as u8), slab);
    }
    heap.remove_local(ctx, heap.unsized_head_off(ctx), slab);
}

/// Normalizes a slab after a block-level op: recompute the free count
/// from the bitset (the durable ground truth) and place the slab on the
/// list its state dictates (Figure 4).
fn normalize_slab(ctx: &Ctx<'_>, heap: &SlabHeap, slab: u32, class: u8) {
    let blocks = heap.classes.blocks_per_slab(class);
    let free = heap.bits(ctx, slab, class).count_set(ctx.core);
    heap.set_free_count(ctx, slab, free);
    let unsized_off = heap.unsized_head_off(ctx);
    if free == 0 {
        // Full: must be unlinked, then detached or disowned.
        unlink_local_everywhere(ctx, heap, slab);
        heap.full_transition(ctx, slab, class);
    } else if free == blocks {
        // Empty: unsized.
        unlink_local_everywhere(ctx, heap, slab);
        let mut header = heap.header(ctx, slab);
        header.class = 0;
        header.flags = 0;
        header.owner = ctx.tid.raw();
        heap.set_header(ctx, slab, header);
        heap.push_local(ctx, unsized_off, slab);
        heap.flush_desc(ctx, slab);
    } else {
        // Non-full: on (only) the logged class's sized list.
        unlink_local_everywhere(ctx, heap, slab);
        let mut header = heap.header(ctx, slab);
        header.class = class;
        header.flags = crate::cell::flags::SIZED;
        header.owner = ctx.tid.raw();
        heap.set_header(ctx, slab, header);
        heap.push_local(ctx, heap.sized_head_off(ctx, class), slab);
        heap.flush_desc(ctx, slab);
    }
}

/// Redoes an undelivered remote-free decrement of `width` blocks (the
/// batch width logged in the record's `b` byte; 1 for eager frees).
fn redo_remote_free(ctx: &Ctx<'_>, heap: &SlabHeap, slab: u32, width: u32) {
    let hl = heap.hl(ctx.mem);
    let dcas = ctx.dcas();
    loop {
        let remote = dcas.read(ctx.core, hl.hwcc_desc_at(slab));
        if remote.payload == 0 {
            return; // cannot happen for a pending free, but be safe
        }
        let k = width.min(remote.payload);
        let last = remote.payload == k;
        let version = ctx.log().bump_version(ctx.core);
        if dcas
            .attempt(
                ctx.core,
                hl.hwcc_desc_at(slab),
                remote,
                remote.payload - k,
                ctx.tid,
                version,
            )
            .is_ok()
        {
            if last {
                refresh_slab_view(ctx, heap, slab);
                heap.steal(ctx, slab);
                heap.flush_desc(ctx, slab);
            }
            return;
        }
    }
}

fn recover_huge(
    ctx: &Ctx<'_>,
    op: Op,
    entry: &crate::oplog::LogEntry,
    report: &mut RecoveryReport,
) {
    let huge = HugeHeap;
    match op {
        Op::HugeClaim => {
            // Whether or not the claim landed, reconstruction will pick
            // the region up from the reservation array.
            report.outcome = "claim state derived from reservation array";
        }
        Op::HugeAlloc => {
            let desc_off = entry.aux[0];
            let data_off = entry.aux[1];
            if huge
                .walk_descs(ctx, ctx.tid.slot(), |off, _| off == desc_off)
                .is_some()
            {
                // Linked but never handed out: mark free; cleanup
                // reclaims it (space and descriptor) later.
                ctx.mem.store_u64(ctx.core, desc_off + 24, 1);
                ctx.mem.flush(ctx.core, desc_off + 24, 8);
                ctx.mem.fence(ctx.core);
                huge.remove_hazard(ctx.mem, ctx.core, ctx.tid, data_off);
                report.outcome = "huge alloc rolled back (descriptor freed)";
            } else {
                // Never linked: the descriptor slot and interval come
                // back via reconstruction.
                huge.remove_hazard(ctx.mem, ctx.core, ctx.tid, data_off);
                report.outcome = "huge alloc had not happened";
            }
        }
        Op::HugeFree => {
            let desc_off = entry.aux[0];
            let desc = huge.read_desc(ctx, desc_off);
            ctx.mem.store_u64(ctx.core, desc_off + 24, 1);
            ctx.mem.flush(ctx.core, desc_off + 24, 8);
            ctx.mem.fence(ctx.core);
            huge.remove_hazard(ctx.mem, ctx.core, ctx.tid, desc.offset);
            report.outcome = "huge free redone";
        }
        Op::HugeCleanup => {
            // Reclamation is completed by the next cleanup pass; nothing
            // is lost because the descriptor is still linked or already
            // unlinked, and reconstruction recomputes both pools.
            report.outcome = "cleanup will re-run";
        }
        _ => unreachable!("slab ops dispatched separately"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::LogWord;

    #[test]
    fn op_encode_decode_roundtrip() {
        for op in [
            Op::Extend,
            Op::PopGlobal,
            Op::PushGlobal,
            Op::InitSlab,
            Op::AllocBlock,
            Op::FreeLocal,
            Op::RemoteFree,
            Op::RemoteFreeLast,
            Op::RemoteFreeComb,
            Op::RemoteFreeCombLast,
        ] {
            for kind in [HeapKind::Small, HeapKind::Large] {
                let raw = op.encode(kind);
                assert_eq!(Op::decode(raw), Some((op, kind)), "{op:?} {kind:?}");
            }
        }
        for op in [Op::HugeAlloc, Op::HugeFree, Op::HugeClaim, Op::HugeCleanup] {
            let raw = op.encode(HeapKind::Huge);
            assert_eq!(Op::decode(raw), Some((op, HeapKind::Huge)));
        }
        assert_eq!(Op::decode(0), Some((Op::Idle, HeapKind::Small)));
        assert_eq!(Op::decode(99), None);
    }

    #[test]
    fn idle_log_word_is_zero() {
        assert_eq!(Op::Idle.encode(HeapKind::Small), 0);
        assert_eq!(LogWord::IDLE.op, 0);
    }
}
