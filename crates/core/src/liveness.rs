//! Lease-based failure detection (paper §3.4 pod model).
//!
//! The allocator's recovery machinery ([`recovery`](crate::recovery))
//! repairs a crashed thread's structures — but something has to *notice*
//! the crash first, and on a pod there is no shared OS to ask. This
//! module supplies the missing layer:
//!
//! * **Lease words** — one epoch-stamped 8-byte cell per thread slot in
//!   the HWcc region ([`Layout::lease_at`](cxl_pod::Layout::lease_at)).
//!   A live thread renews its lease by bumping the 48-bit counter
//!   ([`ThreadHandle::heartbeat`](crate::ThreadHandle::heartbeat));
//!   registration and adoption bump the 16-bit epoch so stale renewals
//!   from a previous incarnation can never be mistaken for fresh ones.
//! * **Detector** — every host runs a [`LivenessDetector`]; each
//!   [`tick`](LivenessDetector::tick) scans the registry and remembers
//!   the last lease word seen per LIVE slot. A slot whose lease does not
//!   change for [`expiry_ticks`](LivenessDetector::new) consecutive
//!   ticks is declared dead: the detector flips its registry cell
//!   LIVE→DEAD through
//!   [`Cxlalloc::declare_dead`](crate::Cxlalloc::declare_dead) (an mCAS
//!   on non-HWcc pods), after which any survivor may adopt it.
//! * **Raced adoption** — survivors race through
//!   [`Cxlalloc::try_adopt`](crate::Cxlalloc::try_adopt); the
//!   DEAD→[`ADOPTING`](registry::ADOPTING) registry CAS is the
//!   linearization point, so exactly one wins and runs recovery while
//!   losers get a typed
//!   [`AllocError::AdoptionRaced`].
//!
//! Ticks are logical, driven by the schedule driver's `DetectorTick`
//! steps — no wall clock is involved, so exploration campaigns replay
//! byte-identically.

use crate::alloc::Cxlalloc;
use crate::error::AllocError;
use crate::ThreadId;
use cxl_pod::CoreId;

/// Thread registry states (one HWcc cell per slot).
pub mod registry {
    /// Slot is unclaimed.
    pub const FREE: u64 = 0;
    /// Slot belongs to a live thread.
    pub const LIVE: u64 = 1;
    /// Slot's thread crashed (or its lease expired); recovery pending.
    pub const DEAD: u64 = 2;
    /// A survivor won the adoption race and is running recovery; the
    /// slot returns to [`LIVE`] when the adopter commits.
    pub const ADOPTING: u64 = 3;
    /// Largest legal registry value (used by the invariant checker).
    pub const MAX: u64 = ADOPTING;
}

/// Lease-word encoding: `[epoch:16 | counter:48]`.
pub mod lease {
    /// Bits of the renewal counter.
    pub const COUNTER_BITS: u32 = 48;
    /// Mask of the renewal counter.
    pub const COUNTER_MASK: u64 = (1 << COUNTER_BITS) - 1;

    /// Packs an epoch and a counter into a lease word.
    #[inline]
    pub fn pack(epoch: u16, counter: u64) -> u64 {
        ((epoch as u64) << COUNTER_BITS) | (counter & COUNTER_MASK)
    }

    /// The incarnation epoch of a lease word.
    #[inline]
    pub fn epoch(word: u64) -> u16 {
        (word >> COUNTER_BITS) as u16
    }

    /// The renewal counter of a lease word.
    #[inline]
    pub fn counter(word: u64) -> u64 {
        word & COUNTER_MASK
    }

    /// The word a heartbeat writes: same epoch, counter + 1.
    #[inline]
    pub fn renew(word: u64) -> u64 {
        pack(epoch(word), counter(word).wrapping_add(1) & COUNTER_MASK)
    }

    /// The word a new incarnation writes: epoch + 1, counter reset.
    /// Any renewal still in flight from the previous incarnation carries
    /// the old epoch and therefore reads as a *change*, never as a
    /// fresher heartbeat of the new owner.
    #[inline]
    pub fn next_epoch(word: u64) -> u64 {
        pack(epoch(word).wrapping_add(1), 0)
    }

    /// Counter sentinel marking a *frozen* lease: the thread drained
    /// cleanly (flushed its buffers, published every free) and will
    /// never renew again, but its registry slot stays LIVE so its heap
    /// structures remain owned rather than adoptable. A heartbeat
    /// counter can never legitimately reach this value — it would take
    /// 2^48 renewals — so the sentinel is unambiguous.
    pub const FROZEN: u64 = COUNTER_MASK;

    /// Whether a lease word carries the frozen-counter sentinel.
    #[inline]
    pub fn is_frozen(word: u64) -> bool {
        counter(word) == FROZEN
    }
}

/// What one detector tick found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetectorReport {
    /// Registry slots examined.
    pub scanned: u32,
    /// Threads this tick declared dead (registry flipped LIVE→DEAD by
    /// *this* detector; a slot another host flipped first is not listed).
    pub expired: Vec<ThreadId>,
}

/// Per-host lease-expiry detector.
///
/// Purely local state — the shared segment holds only the lease words
/// themselves, so any number of hosts may run detectors concurrently;
/// the registry CAS inside [`Cxlalloc::declare_dead`] arbitrates
/// double-detection.
#[derive(Debug)]
pub struct LivenessDetector {
    expiry_ticks: u32,
    /// Last lease word observed per slot.
    last: Vec<u64>,
    /// Consecutive ticks the slot's lease has been unchanged.
    stale: Vec<u32>,
    /// Scratch for the per-tick registry span load.
    states: Vec<u64>,
    /// Scratch for the per-tick lease span load.
    words: Vec<u64>,
}

impl LivenessDetector {
    /// Creates a detector for `max_threads` slots that declares a LIVE
    /// slot dead after `expiry_ticks` consecutive ticks without a lease
    /// renewal. `expiry_ticks` is clamped to at least 1.
    pub fn new(max_threads: u32, expiry_ticks: u32) -> Self {
        LivenessDetector {
            expiry_ticks: expiry_ticks.max(1),
            last: vec![0; max_threads as usize],
            stale: vec![0; max_threads as usize],
            states: vec![0; max_threads as usize],
            words: vec![0; max_threads as usize],
        }
    }

    /// The configured expiry budget in ticks.
    pub fn expiry_ticks(&self) -> u32 {
        self.expiry_ticks
    }

    /// Scans every registry slot once, declaring dead any LIVE slot
    /// whose lease has not moved for the expiry budget.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocError::DeviceContention`] if a LIVE→DEAD flip
    /// exhausted its retry budget (the slot stays LIVE and will be
    /// retried next tick). Races with other detectors or with slot
    /// reuse are absorbed, not reported.
    pub fn tick(&mut self, heap: &Cxlalloc, via: CoreId) -> Result<DetectorReport, AllocError> {
        let mem = heap.process().memory().clone();
        let layout = mem.layout();
        let mut report = DetectorReport::default();
        // Batch the scan: registry and lease slots are contiguous
        // 8-byte-stride HWcc arrays, so one span load per array replaces
        // 2·max_threads dispatched loads per tick. Both words of a slot
        // are read without an intervening declare_dead, so the per-slot
        // decisions below see the same (state, lease) pairs a word-wise
        // scan would have seen at the top of the tick; staleness across
        // the tick is inherent to lease expiry either way.
        let slots = self.last.len();
        mem.load_u64_span(via, layout.registry_at(0), &mut self.states);
        mem.load_u64_span(via, layout.lease_at(0), &mut self.words);
        for slot in 0..slots as u32 {
            report.scanned += 1;
            if self.states[slot as usize] != registry::LIVE {
                self.last[slot as usize] = 0;
                self.stale[slot as usize] = 0;
                continue;
            }
            let word = self.words[slot as usize];
            if lease::is_frozen(word) {
                // Cleanly-drained slot: it will never heartbeat again by
                // design, and its heap state was flushed before the
                // freeze. Declaring it dead would hand a fully-settled
                // heap to an adopter for no reason.
                self.last[slot as usize] = word;
                self.stale[slot as usize] = 0;
                continue;
            }
            if word != self.last[slot as usize] {
                self.last[slot as usize] = word;
                self.stale[slot as usize] = 0;
                continue;
            }
            self.stale[slot as usize] += 1;
            if self.stale[slot as usize] < self.expiry_ticks {
                continue;
            }
            self.stale[slot as usize] = 0;
            let tid = ThreadId::from_slot(slot);
            match heap.declare_dead(tid) {
                Ok(true) => report.expired.push(tid),
                // Another host flipped it first, or the slot was freed
                // or re-registered under us — either way, not ours.
                Ok(false) | Err(AllocError::BadThreadState { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AttachOptions;
    use cxl_pod::{Pod, PodConfig};

    #[test]
    fn lease_word_roundtrip() {
        let w = lease::pack(7, 123_456);
        assert_eq!(lease::epoch(w), 7);
        assert_eq!(lease::counter(w), 123_456);
        let r = lease::renew(w);
        assert_eq!(lease::epoch(r), 7);
        assert_eq!(lease::counter(r), 123_457);
        let n = lease::next_epoch(w);
        assert_eq!(lease::epoch(n), 8);
        assert_eq!(lease::counter(n), 0);
    }

    #[test]
    fn counter_wrap_stays_in_field() {
        let w = lease::pack(u16::MAX, lease::COUNTER_MASK);
        let r = lease::renew(w);
        assert_eq!(lease::counter(r), 0);
        assert_eq!(lease::epoch(r), u16::MAX, "renew must not carry into the epoch");
        assert_eq!(lease::epoch(lease::next_epoch(w)), 0);
    }

    fn setup() -> (Pod, Cxlalloc) {
        let pod = Pod::new(PodConfig::small_for_tests()).unwrap();
        let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
        (pod, heap)
    }

    #[test]
    fn silent_thread_expires_after_budget() {
        let (pod, heap) = setup();
        let t = heap.register_thread().unwrap();
        let tid = t.tid();
        let mut det = LivenessDetector::new(pod.layout().max_threads, 3);
        let via = CoreId(5);
        // Tick 1 records the registration-time lease; ticks 2–3 see it
        // unchanged; expiry fires on the budget'th unchanged tick.
        for _ in 0..3 {
            assert!(det.tick(&heap, via).unwrap().expired.is_empty());
        }
        let report = det.tick(&heap, via).unwrap();
        assert_eq!(report.expired, vec![tid]);
        // The flip is visible in the registry.
        let off = pod.layout().registry_at(tid.slot());
        assert_eq!(pod.memory().load_u64(via, off), registry::DEAD);
        // Subsequent ticks see a non-LIVE slot and stay quiet.
        assert!(det.tick(&heap, via).unwrap().expired.is_empty());
    }

    #[test]
    fn heartbeats_keep_the_lease_alive() {
        let (pod, heap) = setup();
        let t = heap.register_thread().unwrap();
        let mut det = LivenessDetector::new(pod.layout().max_threads, 2);
        let via = CoreId(5);
        for _ in 0..10 {
            t.heartbeat().unwrap();
            let report = det.tick(&heap, via).unwrap();
            assert!(report.expired.is_empty(), "renewed lease must not expire");
        }
        let off = pod.layout().registry_at(t.tid().slot());
        assert_eq!(pod.memory().load_u64(via, off), registry::LIVE);
    }

    #[test]
    fn two_detectors_flip_exactly_once() {
        let (pod, heap) = setup();
        let t = heap.register_thread().unwrap();
        let tid = t.tid();
        let mut a = LivenessDetector::new(pod.layout().max_threads, 1);
        let mut b = LivenessDetector::new(pod.layout().max_threads, 1);
        let via = CoreId(5);
        // Both record the lease...
        a.tick(&heap, via).unwrap();
        b.tick(&heap, via).unwrap();
        // ...then race to declare it dead: only the first flip counts.
        let ra = a.tick(&heap, via).unwrap();
        let rb = b.tick(&heap, via).unwrap();
        assert_eq!(ra.expired, vec![tid]);
        assert!(rb.expired.is_empty(), "second detector must observe DEAD, not flip");
    }

    #[test]
    fn frozen_lease_never_expires() {
        let (pod, heap) = setup();
        let t = heap.register_thread().unwrap();
        let tid = t.tid();
        t.freeze_lease();
        let word = pod.memory().load_u64(CoreId(0), pod.layout().lease_at(tid.slot()));
        assert!(lease::is_frozen(word), "freeze must write the sentinel counter");
        assert_eq!(lease::epoch(word), 1, "freeze keeps the incarnation epoch");
        let mut det = LivenessDetector::new(pod.layout().max_threads, 1);
        let via = CoreId(5);
        for _ in 0..10 {
            let report = det.tick(&heap, via).unwrap();
            assert!(report.expired.is_empty(), "frozen lease must never expire");
        }
        let off = pod.layout().registry_at(tid.slot());
        assert_eq!(pod.memory().load_u64(via, off), registry::LIVE);
    }

    #[test]
    fn frozen_sentinel_is_distinct_from_live_counters() {
        // A renewing lease can never read as frozen short of 2^48 beats.
        let w = lease::pack(3, lease::FROZEN - 1);
        assert!(!lease::is_frozen(w));
        assert!(lease::is_frozen(lease::renew(w)), "renew of MAX-1 hits the sentinel");
        assert!(lease::is_frozen(lease::pack(9, lease::FROZEN)));
        // A frozen word still yields a clean next incarnation.
        let n = lease::next_epoch(lease::pack(9, lease::FROZEN));
        assert_eq!(lease::epoch(n), 10);
        assert_eq!(lease::counter(n), 0);
    }

    #[test]
    fn registration_bumps_epoch() {
        let (pod, heap) = setup();
        let t = heap.register_thread().unwrap();
        let word = pod
            .memory()
            .load_u64(CoreId(0), pod.layout().lease_at(t.tid().slot()));
        assert_eq!(lease::epoch(word), 1, "fresh registration is epoch 1");
        assert_eq!(lease::counter(word), 0);
    }
}
