//! Per-thread recovery logs.
//!
//! Cxlalloc recovers without scanning the heap: before each structural
//! operation, the thread atomically updates 8 bytes of state in place,
//! "like a single-element redo log" (paper §1, §3.4.2). On recovery, the
//! log word identifies the interrupted operation and carries enough
//! information to redo it idempotently.
//!
//! Each thread owns one cacheline in the segment's log region:
//!
//! ```text
//! word 0: the LogWord (op, operands, dcas version low bits)
//! word 1: the thread's full 64-bit dcas version counter
//! words 2–7: auxiliary operands (huge-heap offsets are 64-bit)
//! ```
//!
//! The log is single-writer. Writes are flushed and fenced before the
//! operation proceeds so the log in CXL memory is always at least as new
//! as any visible effect of the operation; a crashed thread's unflushed
//! cache contents are lost, but then so are the operation's effects.

use crate::cell::LogWord;
use cxl_pod::{CoreId, PodMemory};

/// Number of auxiliary operand words available per entry.
pub const AUX_WORDS: usize = 6;

/// Handle to one thread's recovery log line.
#[derive(Clone, Copy)]
pub struct OpLog<'m> {
    mem: &'m dyn PodMemory,
    slot: u32,
    /// When false (the `cxlalloc-nonrecoverable` ablation), `begin` and
    /// `clear` are no-ops; `bump_version` still counts so detectable-CAS
    /// cells stay ABA-safe.
    enabled: bool,
    /// When true, [`OpLog::clear_relaxed`] stores IDLE without its own
    /// flush + fence: durability rides on the *next* `begin`'s 64-byte
    /// flush of the same log cacheline (fence coalescing). `begin`
    /// itself always flushes eagerly — the durable log must be at least
    /// as new as any visible effect of the operation.
    coalesce: bool,
}

impl<'m> std::fmt::Debug for OpLog<'m> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpLog").field("slot", &self.slot).finish()
    }
}

/// A decoded log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// The operation word.
    pub word: LogWord,
    /// The thread's full version counter at entry time.
    pub version_counter: u64,
    /// Auxiliary operands.
    pub aux: [u64; AUX_WORDS],
}

impl<'m> OpLog<'m> {
    /// Creates a handle for thread slot `slot`.
    pub fn new(mem: &'m dyn PodMemory, slot: u32) -> Self {
        Self::with_enabled(mem, slot, true)
    }

    /// Creates a handle, optionally inert (the `cxlalloc-nonrecoverable`
    /// ablation).
    pub fn with_enabled(mem: &'m dyn PodMemory, slot: u32, enabled: bool) -> Self {
        Self::with_options(mem, slot, enabled, false)
    }

    /// Creates a handle with fence coalescing opted in or out.
    pub fn with_options(mem: &'m dyn PodMemory, slot: u32, enabled: bool, coalesce: bool) -> Self {
        OpLog {
            mem,
            slot,
            enabled,
            coalesce,
        }
    }

    #[inline]
    fn word_off(&self) -> u64 {
        self.mem.layout().log_at(self.slot)
    }

    /// Publishes a log entry: auxiliary words first, the operation word
    /// last, then flush + fence so the entry is durable in CXL memory
    /// before the operation's first shared-state effect.
    pub fn begin(&self, core: CoreId, word: LogWord, aux: &[u64]) {
        debug_assert!(aux.len() <= AUX_WORDS);
        if !self.enabled {
            return;
        }
        let layout = self.mem.layout();
        for (i, &value) in aux.iter().enumerate() {
            self.mem
                .store_u64(core, layout.log_aux_at(self.slot, i as u32 + 2), value);
        }
        self.mem.store_u64(core, self.word_off(), word.pack());
        // clwb, not clflush: the log line is single-writer and the very
        // next operation rewrites it, so durability must not cost the
        // owner a refill (the version counter on the same line is read
        // again by the next `bump_version`).
        self.mem.writeback(core, self.word_off(), 64);
        self.mem.fence(core);
    }

    /// Clears the log to idle (operation completed), durably.
    pub fn clear(&self, core: CoreId) {
        if !self.enabled {
            return;
        }
        self.mem.store_u64(core, self.word_off(), LogWord::IDLE.pack());
        self.mem.writeback(core, self.word_off(), 8);
        self.mem.fence(core);
    }

    /// Clears the log to idle, coalescing the flush + fence when the
    /// handle opted in: the IDLE store stays in the core's cache and
    /// becomes durable with the next `begin`'s flush of the same
    /// cacheline. Until then the durable log still names the *completed*
    /// operation, so a crash in the window redoes it — safe for every
    /// slab op, whose redo is idempotent from durable ground truth
    /// (DESIGN.md §9.3). Huge-heap ops keep the eager [`OpLog::clear`]:
    /// redoing a completed `HugeAlloc` would roll back a delivered
    /// allocation.
    pub fn clear_relaxed(&self, core: CoreId) {
        if !self.coalesce {
            return self.clear(core);
        }
        if !self.enabled {
            return;
        }
        self.mem.store_u64(core, self.word_off(), LogWord::IDLE.pack());
        self.mem.note_flush_coalesced();
        self.mem.note_fence_elided();
    }

    /// Bumps and durably stores the thread's dcas version counter,
    /// returning the new version's low 16 bits.
    ///
    /// Called *before* [`OpLog::begin`] for operations that perform a
    /// detectable CAS, so recovery knows which version the pending CAS
    /// used.
    pub fn bump_version(&self, core: CoreId) -> u16 {
        let layout = self.mem.layout();
        let off = layout.log_aux_at(self.slot, 1);
        let next = self.mem.load_u64(core, off).wrapping_add(1);
        self.mem.store_u64(core, off, next);
        // Durability of the counter rides on the `begin` flush that
        // always follows; the counter word shares the log cacheline.
        next as u16
    }

    /// Reads the current entry. The reader flushes its own cache first so
    /// a *recovering* core (different from the crashed one) sees the
    /// durable state, not a stale cached line.
    pub fn read(&self, core: CoreId) -> LogEntry {
        let layout = self.mem.layout();
        self.mem.flush(core, self.word_off(), 64);
        let word = LogWord::unpack(self.mem.load_u64(core, self.word_off()));
        let version_counter = self.mem.load_u64(core, layout.log_aux_at(self.slot, 1));
        let mut aux = [0u64; AUX_WORDS];
        for (i, slot) in aux.iter_mut().enumerate() {
            *slot = self
                .mem
                .load_u64(core, layout.log_aux_at(self.slot, i as u32 + 2));
        }
        LogEntry {
            word,
            version_counter,
            aux,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_pod::{HwccMode, Pod, PodConfig};

    #[test]
    fn begin_read_clear_roundtrip() {
        let pod = Pod::new(PodConfig::small_for_tests()).unwrap();
        let log = OpLog::new(pod.memory().as_ref(), 3);
        let core = CoreId(0);
        let word = LogWord {
            op: 2,
            a: 77,
            b: 4,
            c: 9,
        };
        log.begin(core, word, &[111, 222]);
        let entry = log.read(core);
        assert_eq!(entry.word, word);
        assert_eq!(entry.aux[0], 111);
        assert_eq!(entry.aux[1], 222);
        log.clear(core);
        assert_eq!(log.read(core).word, LogWord::IDLE);
        // Aux words survive the clear (only the op word resets).
        assert_eq!(log.read(core).aux[0], 111);
    }

    #[test]
    fn version_counter_increments() {
        let pod = Pod::new(PodConfig::small_for_tests()).unwrap();
        let log = OpLog::new(pod.memory().as_ref(), 0);
        let core = CoreId(0);
        assert_eq!(log.bump_version(core), 1);
        assert_eq!(log.bump_version(core), 2);
        log.begin(core, LogWord::IDLE, &[]);
        assert_eq!(log.read(core).version_counter, 2);
    }

    #[test]
    fn logs_are_per_thread() {
        let pod = Pod::new(PodConfig::small_for_tests()).unwrap();
        let mem = pod.memory().as_ref();
        let core = CoreId(0);
        let a = OpLog::new(mem, 0);
        let b = OpLog::new(mem, 1);
        a.begin(core, LogWord {
            op: 1,
            a: 0,
            b: 0,
            c: 0,
        }, &[]);
        assert_eq!(b.read(core).word, LogWord::IDLE);
    }

    #[test]
    fn relaxed_clear_defers_durability_to_next_begin() {
        let pod = Pod::with_simulation(PodConfig::small_for_tests(), HwccMode::Limited).unwrap();
        let mem = pod.memory().as_ref();
        let sim = mem.as_any().downcast_ref::<cxl_pod::SimMemory>().unwrap();
        let log = OpLog::with_options(mem, 0, true, true);
        let word = LogWord { op: 5, a: 1, b: 2, c: 3 };
        log.begin(CoreId(0), word, &[]);
        log.clear_relaxed(CoreId(0));
        // A crash in the window re-reads the *completed* op: the IDLE
        // store died with the cache.
        sim.cache().discard_all(0);
        assert_eq!(log.read(CoreId(1)).word, word);
        // The next begin's flush covers the line; after a crash the
        // durable log names the new op, never a stale one.
        let next = LogWord { op: 6, a: 9, b: 0, c: 1 };
        log.begin(CoreId(0), next, &[]);
        sim.cache().discard_all(0);
        assert_eq!(log.read(CoreId(1)).word, next);
    }

    #[test]
    fn relaxed_clear_without_optin_is_durable() {
        let pod = Pod::with_simulation(PodConfig::small_for_tests(), HwccMode::Limited).unwrap();
        let mem = pod.memory().as_ref();
        let sim = mem.as_any().downcast_ref::<cxl_pod::SimMemory>().unwrap();
        let log = OpLog::with_options(mem, 0, true, false);
        log.begin(CoreId(0), LogWord { op: 5, a: 1, b: 2, c: 3 }, &[]);
        log.clear_relaxed(CoreId(0));
        sim.cache().discard_all(0);
        assert_eq!(log.read(CoreId(1)).word, LogWord::IDLE);
    }

    #[test]
    fn durable_across_simulated_crash() {
        // In Limited mode, a log entry written + flushed by core 0 must
        // be visible to a recovering core 1 even after core 0's cache is
        // discarded (crash).
        let pod = Pod::with_simulation(PodConfig::small_for_tests(), HwccMode::Limited).unwrap();
        let mem = pod.memory().as_ref();
        let log = OpLog::new(mem, 0);
        let word = LogWord {
            op: 5,
            a: 42,
            b: 1,
            c: 2,
        };
        log.begin(CoreId(0), word, &[7]);
        // Crash: core 0 loses its cache.
        let sim = mem
            .as_any()
            .downcast_ref::<cxl_pod::SimMemory>()
            .unwrap();
        sim.cache().discard_all(0);
        // Recovery from core 1.
        let entry = log.read(CoreId(1));
        assert_eq!(entry.word, word);
        assert_eq!(entry.aux[0], 7);
    }
}
