//! Bounded retry/backoff for contended CAS loops.
//!
//! Retry loops over shared cells used to be raw bounded spins (64
//! iterations in `registry_cas`) or unbounded ones (the `dcas` help
//! path). Both are wrong on a pod whose mCAS device is degraded: the
//! bounded spin gives up with an ambiguous error, the unbounded one
//! livelocks. This module centralizes the policy: **exponential**
//! backoff with **jitter** from the seeded RNG (so schedule replay stays
//! byte-identical — no wall-clock randomness) and a **bounded** retry
//! budget after which the caller surfaces a typed
//! [`AllocError::DeviceContention`](crate::AllocError::DeviceContention).
//!
//! All pauses are virtual: [`Backoff::pause`] burns spin-loop hints and
//! never sleeps, so exploration campaigns stay deterministic and fast.

use rand::{Rng, SeedableRng};

/// Tuning for a bounded retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Failed attempts tolerated before the loop reports contention.
    /// Chosen larger than the NMP breaker's
    /// [`trip_after`](cxl_pod::BreakerConfig::trip_after) default so a
    /// persistent device outage trips into the software-fallback path
    /// *within one retry loop* instead of surfacing an error.
    pub max_retries: u32,
    /// Spin-loop hints paid after the first failed attempt.
    pub base_spins: u32,
    /// Cap on the exponentially growing pause.
    pub max_spins: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            max_retries: 24,
            base_spins: 4,
            max_spins: 256,
        }
    }
}

/// One retry loop's backoff state.
#[derive(Debug)]
pub struct Backoff {
    policy: BackoffPolicy,
    attempt: u32,
    rng: rand::rngs::StdRng,
}

impl Backoff {
    /// Creates backoff state for one loop. `seed` feeds the jitter RNG;
    /// derive it from stable inputs (core, target offset) so replays of
    /// the same schedule pause identically.
    pub fn new(policy: BackoffPolicy, seed: u64) -> Self {
        Backoff {
            policy,
            attempt: 0,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Failed attempts recorded so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Records a failed attempt. Returns `Some(spins)` — the jittered
    /// pause to pay before retrying — or `None` when the retry budget is
    /// exhausted and the caller must give up.
    pub fn step(&mut self) -> Option<u32> {
        if self.attempt >= self.policy.max_retries {
            return None;
        }
        self.attempt += 1;
        Some(self.jittered())
    }

    /// Records a failed attempt in a loop that may not give up (e.g.
    /// committing a state the caller already owns): the pause saturates
    /// at `max_spins` instead of exhausting.
    pub fn step_saturating(&mut self) -> u32 {
        self.attempt = self.attempt.saturating_add(1);
        self.jittered()
    }

    /// Exponential pause for the current attempt, halved and re-widened
    /// by the jitter RNG so competing loops desynchronize.
    fn jittered(&mut self) -> u32 {
        let shift = self.attempt.saturating_sub(1).min(16);
        let exp = self
            .policy
            .base_spins
            .saturating_mul(1u32 << shift)
            .min(self.policy.max_spins)
            .max(1);
        exp / 2 + self.rng.gen_range(0..=exp - exp / 2)
    }

    /// Burns `spins` spin-loop hints. Virtual-time-friendly: never
    /// sleeps, never reads a clock.
    pub fn pause(spins: u32) {
        for _ in 0..spins {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_exhausts_at_budget() {
        let policy = BackoffPolicy {
            max_retries: 3,
            ..BackoffPolicy::default()
        };
        let mut b = Backoff::new(policy, 7);
        assert!(b.step().is_some());
        assert!(b.step().is_some());
        assert!(b.step().is_some());
        assert!(b.step().is_none(), "fourth failure must exhaust");
        assert_eq!(b.attempts(), 3);
    }

    #[test]
    fn pauses_grow_up_to_cap() {
        let policy = BackoffPolicy {
            max_retries: 32,
            base_spins: 4,
            max_spins: 64,
        };
        let mut b = Backoff::new(policy, 1);
        let pauses: Vec<u32> = (0..10).map(|_| b.step().unwrap()).collect();
        // Every jittered pause stays within [exp/2, exp] <= max_spins.
        for &p in &pauses {
            assert!(p <= 64);
        }
        // Later pauses reach at least half the cap.
        assert!(pauses[9] >= 32);
        // Early pauses are small.
        assert!(pauses[0] <= 4);
    }

    #[test]
    fn same_seed_same_pauses() {
        let policy = BackoffPolicy::default();
        let mut a = Backoff::new(policy, 42);
        let mut b = Backoff::new(policy, 42);
        for _ in 0..10 {
            assert_eq!(a.step(), b.step());
        }
    }

    #[test]
    fn saturating_step_never_exhausts() {
        let policy = BackoffPolicy {
            max_retries: 2,
            base_spins: 2,
            max_spins: 16,
        };
        let mut b = Backoff::new(policy, 3);
        for _ in 0..100 {
            let spins = b.step_saturating();
            assert!((1..=16).contains(&spins));
        }
    }

    #[test]
    fn pause_is_a_noop_for_zero() {
        Backoff::pause(0);
        Backoff::pause(8);
    }
}
