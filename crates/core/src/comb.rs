//! Flat-combining publication of contended remote-free batches.
//!
//! Remote frees against a hot slab all CAS the same HWcc counter line;
//! under heavy sharing (many hosts freeing into one producer's slabs)
//! the retry traffic dominates the publish path. This module adds a
//! *flat-combining* layer on top of the batched publish protocol of
//! `crate::remote`: a thread that wants to publish a batch first
//! *posts* it to its own per-thread **combiner-request word** (one
//! 8-byte cell per thread slot in the [`Layout::comb`](cxl_pod::Layout)
//! tail region), then races to claim its own request. The claim winner
//! scans the other slots' words, claims every posted request against
//! the *same* slab, and publishes the combined decrement with a single
//! detectable CAS — one counter RMW where there would have been up to
//! [`MAX_CLAIM`].
//!
//! The request words are accessed through direct segment atomics (like
//! the detectable-allocation destination cell), so every transition is
//! durable by construction and the protocol is crash-recoverable:
//!
//! * A word in **POSTED** or **CLAIMED** state durably names a batch
//!   whose decrement has *not* landed; recovery republishes it.
//! * The combined publish is logged (`Op::RemoteFreeComb`) with the
//!   claimed slots packed into the record's aux word, so an interrupted
//!   combined CAS is redone exactly once and every contributor's word
//!   is released (DONE-marked) by recovery.
//! * A waiter whose winner crashes is never wedged: the wait loop is
//!   deadline-bound and surfaces
//!   [`AllocError::CombinerStalled`](crate::AllocError);
//!   the stalled batch stays in the winner's custody (its recovery
//!   publishes it) and the waiter's later publications take the direct
//!   path until the word is released.
//!
//! Combining is *contention-adaptive*: a per-thread `Combiner`
//! governor samples the CAS-retry rate of the publish path and only
//! routes batches through the combining protocol when retries are
//! actually happening, so uncontended (1–2 host) latency is the plain
//! direct path. The governor also widens the effective batch width
//! under contention (up to the 255-wide oplog field), narrowing again
//! when the retry rate subsides.

use crate::ctx::Ctx;
use crate::error::{AllocError, HeapKind};
use crate::slab::SlabHeap;
use std::cell::Cell;
use std::sync::atomic::Ordering;

/// Crash-point labels on the combined publish path, kept separate from
/// [`crate::slab::CRASH_POINTS`] (like
/// [`crate::slab::BATCH_CRASH_POINTS`]) so schedule generation is
/// unperturbed for configurations that never combine.
pub const COMB_CRASH_POINTS: &[&str] = &[
    "comb::publish::after_post",
    "comb::publish::after_claim",
    "comb::publish::after_log",
    "comb::publish::after_cas",
    "comb::publish::after_done",
];

/// Most requests one combined publish may merge, including the
/// winner's own (the claimed slots must pack into one 64-bit oplog aux
/// word as four 16-bit `slot + 1` fields).
pub const MAX_CLAIM: usize = 4;

/// Spins a waiter burns on its claimed word before declaring the
/// winner stalled. Bounded so a crashed winner can never wedge a
/// waiter; generous enough that a live winner's scan + log + CAS +
/// DONE-mark sequence always fits.
const WAIT_SPINS: u32 = 1 << 22;

/// Publishes per governor window; retry rates are evaluated (and the
/// combining toggle / batch boost adjusted) once per window.
const GOVERNOR_WINDOW: u64 = 32;

/// Request-word states (bits 0–1).
const EMPTY: u64 = 0;
const POSTED: u64 = 1;
const CLAIMED: u64 = 2;
const DONE: u64 = 3;

const STATE_MASK: u64 = 0b11;
const KIND_SHIFT: u32 = 2;
const SLAB_SHIFT: u32 = 4;
const SLAB_MASK: u64 = (1 << 28) - 1;
const K_SHIFT: u32 = 32;
const K_MASK: u64 = 0xFF;
const WINNER_SHIFT: u32 = 40;

fn kind_tag(kind: HeapKind) -> u64 {
    match kind {
        HeapKind::Small => 1,
        HeapKind::Large => 2,
        HeapKind::Huge => unreachable!("huge allocations have no slab counters"),
    }
}

/// Packs a request word: `state | kind | slab | k | winner`.
fn pack(state: u64, kind: HeapKind, slab: u32, k: u32, winner: u16) -> u64 {
    debug_assert!(k <= 255);
    state
        | (kind_tag(kind) << KIND_SHIFT)
        | ((slab as u64 & SLAB_MASK) << SLAB_SHIFT)
        | ((k as u64 & K_MASK) << K_SHIFT)
        | ((winner as u64) << WINNER_SHIFT)
}

pub(crate) fn state(word: u64) -> u64 {
    word & STATE_MASK
}

/// The DONE state value, for recovery's state dispatch.
pub(crate) const DONE_STATE: u64 = DONE;

/// Whether the word names a batch in any lifecycle state (POSTED,
/// CLAIMED, or DONE — everything but EMPTY).
pub(crate) fn state_nonempty(word: u64) -> bool {
    state(word) != EMPTY
}

pub(crate) fn kind_of(word: u64) -> Option<HeapKind> {
    match (word >> KIND_SHIFT) & STATE_MASK {
        1 => Some(HeapKind::Small),
        2 => Some(HeapKind::Large),
        _ => None,
    }
}

pub(crate) fn slab_of(word: u64) -> u32 {
    ((word >> SLAB_SHIFT) & SLAB_MASK) as u32
}

pub(crate) fn k_of(word: u64) -> u32 {
    ((word >> K_SHIFT) & K_MASK) as u32
}

pub(crate) fn winner_of(word: u64) -> u16 {
    (word >> WINNER_SHIFT) as u16
}

pub(crate) fn is_pending(word: u64) -> bool {
    matches!(state(word), POSTED | CLAIMED)
}

pub(crate) fn is_claimed_by(word: u64, tid_raw: u16) -> bool {
    state(word) == CLAIMED && winner_of(word) == tid_raw
}

pub(crate) fn is_posted(word: u64) -> bool {
    state(word) == POSTED
}

/// DONE word preserving the contributor's batch identity (released by
/// the contributor's next publish attempt, or audited as published).
pub(crate) fn done_word(word: u64, winner: u16) -> u64 {
    pack(
        DONE,
        kind_of(word).expect("DONE-marking a word without a kind tag"),
        slab_of(word),
        k_of(word),
        winner,
    )
}

/// Per-thread combining state (DRAM, single-writer, like the
/// descriptor shadow): the contention governor plus a mirror of the
/// thread's own request word.
#[derive(Debug)]
pub(crate) struct Combiner {
    /// Whether the attach options permit combining at all.
    permitted: bool,
    /// Governor decision: route publishes through the combiner.
    engaged: Cell<bool>,
    /// Governor-widened effective batch width (0 = no widening).
    boost: Cell<u32>,
    /// Publishes in the current governor window.
    publishes: Cell<u64>,
    /// Publish-path CAS retries in the current window.
    retries: Cell<u64>,
    /// DRAM mirror of the thread's own request word's (kind, slab)
    /// while it is non-EMPTY. While set, further frees against that
    /// slab must take the eager direct path (no durable `remote_buf`
    /// record), so the slab never has two durable batch representations
    /// and recovery's dedup rule stays a pure skip.
    in_flight: Cell<Option<(HeapKind, u32)>>,
}

impl Combiner {
    pub fn new(permitted: bool) -> Self {
        Combiner {
            permitted,
            engaged: Cell::new(false),
            boost: Cell::new(0),
            publishes: Cell::new(0),
            retries: Cell::new(0),
            in_flight: Cell::new(None),
        }
    }

    /// Whether the next publish should go through the combiner.
    pub fn should_combine(&self) -> bool {
        self.permitted && self.engaged.get()
    }

    /// The governor's effective batch width given the configured one.
    pub fn effective_batch(&self, configured: u32) -> u32 {
        configured.max(self.boost.get()).clamp(1, 255)
    }

    /// Whether frees to `(kind, slab)` must bypass buffering because
    /// the thread's own request word currently names that slab.
    pub fn blocks_buffering(&self, kind: HeapKind, slab: u32) -> bool {
        self.in_flight.get() == Some((kind, slab))
    }

    pub fn set_in_flight(&self, kind: HeapKind, slab: u32) {
        self.in_flight.set(Some((kind, slab)));
    }

    pub fn clear_in_flight(&self) {
        self.in_flight.set(None);
    }

    /// Counts one publish-path CAS retry toward the current window.
    pub fn note_retry(&self) {
        self.retries.set(self.retries.get() + 1);
    }

    /// Pins the governor: `boost > 0` engages combining at that batch
    /// boost, `0` disengages. Bypasses the windowed retry sampling — a
    /// deterministic knob for tests and benchmarks (the governor keeps
    /// adjusting from subsequent windows as usual).
    pub fn force(&self, boost: u32) {
        if boost > 0 && self.permitted {
            self.engaged.set(true);
            self.boost.set(boost.min(255));
        } else {
            self.engaged.set(false);
            self.boost.set(0);
        }
    }

    /// Counts one publish and, at window boundaries, re-evaluates the
    /// combining toggle and batch boost from the observed retry rate.
    pub fn note_publish(&self) {
        let n = self.publishes.get() + 1;
        if n < GOVERNOR_WINDOW {
            self.publishes.set(n);
            return;
        }
        let retries = self.retries.get();
        self.publishes.set(0);
        self.retries.set(0);
        if !self.permitted {
            return;
        }
        if retries * 4 >= GOVERNOR_WINDOW {
            // ≥ 25% of publishes retried: engage combining and widen
            // the batch (doubling, capped at the oplog field width).
            self.engaged.set(true);
            self.boost.set((self.boost.get().max(1) * 2).min(255));
        } else if retries * 16 <= GOVERNOR_WINDOW {
            // ≤ ~6%: narrow; fully quiet windows disengage so the
            // uncontended path pays nothing.
            let boost = self.boost.get() / 2;
            self.boost.set(boost);
            if boost < 2 {
                self.engaged.set(false);
            }
        }
    }
}

fn word_at(ctx: &Ctx<'_>, slot: u32) -> u64 {
    ctx.mem.layout().comb_at(slot)
}

fn load(ctx: &Ctx<'_>, off: u64) -> u64 {
    ctx.mem.segment().atomic_u64(off).load(Ordering::SeqCst)
}

fn store(ctx: &Ctx<'_>, off: u64, word: u64) {
    ctx.mem.segment().atomic_u64(off).store(word, Ordering::SeqCst);
}

fn cas(ctx: &Ctx<'_>, off: u64, current: u64, new: u64) -> bool {
    ctx.mem
        .segment()
        .atomic_u64(off)
        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
}

/// Publishes `k` buffered remote frees against `slab` through the
/// combining protocol. Falls back to the direct publish when the
/// thread's request word is busy (a previous batch still in a stalled
/// winner's custody).
///
/// # Errors
///
/// [`AllocError::CombinerStalled`] when another thread claimed this
/// batch and went silent past the wait deadline. The frees are in the
/// winner's custody (durably, in this thread's request word) and will
/// be published by the winner or its recovery — they are not lost, and
/// the caller must not republish them.
pub(crate) fn publish_combined(
    ctx: &Ctx<'_>,
    heap: &SlabHeap,
    comb: &Combiner,
    slab: u32,
    k: u32,
) -> Result<(), AllocError> {
    let me = ctx.tid.slot();
    let my_off = word_at(ctx, me);
    let current = load(ctx, my_off);
    match state(current) {
        DONE => {
            // A previous batch the waiter never saw complete (stall
            // timeout, then the winner or its recovery finished):
            // release the word and fall through to post.
            store(ctx, my_off, EMPTY);
            comb.clear_in_flight();
        }
        CLAIMED | POSTED => {
            // Still in a (stalled) winner's custody: publish this new
            // batch directly; the word stays theirs to release.
            heap.publish_remote_frees(ctx, slab, k);
            return Ok(());
        }
        _ => {}
    }
    // Post the batch durably, then retire its remote_buf word: between
    // the two stores both durably name the same batch, and recovery
    // skips the remote_buf word whenever the request word is non-EMPTY.
    let posted = pack(POSTED, heap.kind, slab, k, 0);
    store(ctx, my_off, posted);
    comb.set_in_flight(heap.kind, slab);
    ctx.crash_point("comb::publish::after_post");
    if ctx.recoverable {
        crate::remote::durable::clear(ctx, heap.kind, slab);
    }
    // Race to claim our own request. Losing means another winner is
    // servicing us; winning makes us the combiner.
    let claimed = pack(CLAIMED, heap.kind, slab, k, ctx.tid.raw());
    if cas(ctx, my_off, posted, claimed) {
        ctx.crash_point("comb::publish::after_claim");
        publish_as_winner(ctx, heap, comb, slab, k, my_off);
        Ok(())
    } else {
        wait_for_winner(ctx, heap.kind, comb, slab, k, my_off)
    }
}

/// The winner path: scan the other slots for posted requests against
/// the same slab, claim up to [`MAX_CLAIM`] (including our own), and
/// publish the combined decrement with one logged detectable CAS.
fn publish_as_winner(
    ctx: &Ctx<'_>,
    heap: &SlabHeap,
    comb: &Combiner,
    slab: u32,
    own_k: u32,
    my_off: u64,
) {
    use crate::cell::LogWord;
    use crate::recovery::Op;
    use cxl_pod::trace::TraceKind;

    let layout = ctx.mem.layout();
    let me = ctx.tid.slot();
    // (slot, word offset, claimed word) per contributor, self first.
    let mut claims: Vec<(u32, u64, u64)> = Vec::with_capacity(MAX_CLAIM);
    claims.push((me, my_off, pack(CLAIMED, heap.kind, slab, own_k, ctx.tid.raw())));
    let mut k_total = own_k;
    for slot in 0..layout.max_threads {
        if claims.len() >= MAX_CLAIM {
            break;
        }
        if slot == me {
            continue;
        }
        let off = word_at(ctx, slot);
        let w = load(ctx, off);
        if !is_posted(w) || kind_of(w) != Some(heap.kind) || slab_of(w) != slab {
            continue;
        }
        let their_k = k_of(w);
        if k_total + their_k > 255 {
            continue;
        }
        let claimed = pack(CLAIMED, heap.kind, slab, their_k, ctx.tid.raw());
        if cas(ctx, off, w, claimed) {
            claims.push((slot, off, claimed));
            k_total += their_k;
        }
    }
    // The claimed slots travel in the oplog aux word as four 16-bit
    // `slot + 1` fields, so recovery can release exactly these words.
    let mut packed_slots = 0u64;
    for (i, (slot, _, _)) in claims.iter().enumerate() {
        packed_slots |= ((*slot as u64 + 1) & 0xFFFF) << (i * 16);
    }
    let hl = heap.hl(ctx.mem);
    let dcas = ctx.dcas();
    loop {
        let remote = dcas.read(ctx.core, hl.hwcc_desc_at(slab));
        if remote.payload == 0 {
            // Defensive parity with the direct publish: a zero payload
            // means the batch double-frees; drop it and release every
            // contributor.
            release_claims(ctx, &claims, my_off, comb);
            return;
        }
        let k_eff = k_total.min(remote.payload);
        let last = remote.payload == k_eff;
        let version = ctx.log().bump_version(ctx.core);
        ctx.log().begin(
            ctx.core,
            LogWord {
                op: Op::encode(
                    if last {
                        Op::RemoteFreeCombLast
                    } else {
                        Op::RemoteFreeComb
                    },
                    heap.kind,
                ),
                a: slab,
                b: k_eff as u8,
                c: version,
            },
            &[packed_slots],
        );
        ctx.crash_point("comb::publish::after_log");
        if dcas
            .attempt(
                ctx.core,
                hl.hwcc_desc_at(slab),
                remote,
                remote.payload - k_eff,
                ctx.tid,
                version,
            )
            .is_ok()
        {
            ctx.crash_point("comb::publish::after_cas");
            ctx.mem.note_remote_free_batched(k_eff as u64);
            ctx.mem
                .trace_op(ctx.core, TraceKind::RemoteFreePublish, k_eff as u64);
            ctx.mem.note_comb_win();
            ctx.mem
                .trace_op(ctx.core, TraceKind::CombinerWin, k_total as u64);
            if last {
                heap.steal(ctx, slab);
            }
            release_claims(ctx, &claims, my_off, comb);
            ctx.crash_point("comb::publish::after_done");
            ctx.log().clear_relaxed(ctx.core);
            if last {
                heap.release_overflow(ctx);
            }
            return;
        }
        ctx.log().clear_relaxed(ctx.core);
        ctx.mem
            .note_cas_retry_at(cxl_pod::stats::CasRetrySite::RemotePublish);
        ctx.mem.trace_op(ctx.core, TraceKind::CasRetry, hl.hwcc_desc_at(slab));
        comb.note_retry();
    }
}

/// Releases every claimed word after the combined decrement: DONE-mark
/// contributors (they release their own word), clear our own.
fn release_claims(ctx: &Ctx<'_>, claims: &[(u32, u64, u64)], my_off: u64, comb: &Combiner) {
    for &(_, off, word) in claims {
        if off == my_off {
            store(ctx, off, EMPTY);
        } else {
            store(ctx, off, done_word(word, ctx.tid.raw()));
        }
    }
    comb.clear_in_flight();
}

/// The waiter path: our batch was claimed by another winner; spin on
/// the request word (deadline-bound) until it is DONE-marked.
fn wait_for_winner(
    ctx: &Ctx<'_>,
    kind: HeapKind,
    comb: &Combiner,
    slab: u32,
    k: u32,
    my_off: u64,
) -> Result<(), AllocError> {
    use cxl_pod::trace::TraceKind;
    let mut spins = 0u32;
    loop {
        let w = load(ctx, my_off);
        match state(w) {
            DONE | EMPTY => {
                // Published (or released by the winner's recovery).
                store(ctx, my_off, EMPTY);
                comb.clear_in_flight();
                ctx.mem.note_comb_wait();
                ctx.mem.trace_op(ctx.core, TraceKind::CombinerWait, k as u64);
                let _ = kind;
                return Ok(());
            }
            _ => {
                spins += 1;
                if spins >= WAIT_SPINS {
                    // The winner went silent. The batch stays durably in
                    // our word under the winner's custody; its recovery
                    // publishes it. Meanwhile our publishes take the
                    // direct path (the word reads CLAIMED).
                    return Err(AllocError::CombinerStalled {
                        thread: ctx.tid,
                        slab,
                        winner: winner_of(w),
                    });
                }
                std::hint::spin_loop();
            }
        }
    }
}

/// The combiner-request word of `slot`, read durably (for recovery,
/// audits, and white-box tests).
pub fn read_word(mem: &dyn cxl_pod::PodMemory, slot: u32) -> u64 {
    mem.segment()
        .atomic_u64(mem.layout().comb_at(slot))
        .load(Ordering::SeqCst)
}

/// Decodes a request word into `(kind, slab, k)` when it names a
/// *pending* batch (POSTED or CLAIMED); `None` for EMPTY and DONE
/// words. The audit/test-facing view of the word codec.
pub fn pending_batch(word: u64) -> Option<(HeapKind, u32, u32)> {
    if !is_pending(word) {
        return None;
    }
    Some((kind_of(word)?, slab_of(word), k_of(word)))
}

/// Builds a POSTED request word (white-box tests simulating a
/// contributor that posted a batch and awaits a winner).
pub fn posted_word(kind: HeapKind, slab: u32, k: u32) -> u64 {
    pack(POSTED, kind, slab, k, 0)
}

/// Builds a CLAIMED request word held by `winner` (white-box tests
/// simulating a batch in a stalled winner's custody).
pub fn claimed_word(kind: HeapKind, slab: u32, k: u32, winner: u16) -> u64 {
    pack(CLAIMED, kind, slab, k, winner)
}

/// Whether the word is DONE: the batch's decrement landed and the
/// contributor may release the word.
pub fn is_done(word: u64) -> bool {
    state(word) == DONE
}

/// Builds a DONE request word published by `winner` (white-box tests
/// simulating a stale completion the contributor never observed).
pub fn done_marked(kind: HeapKind, slab: u32, k: u32, winner: u16) -> u64 {
    pack(DONE, kind, slab, k, winner)
}

/// Stores `slot`'s combiner-request word durably (recovery and
/// white-box tests only — live threads go through the posting
/// protocol).
pub fn write_word(mem: &dyn cxl_pod::PodMemory, slot: u32, word: u64) {
    mem.segment()
        .atomic_u64(mem.layout().comb_at(slot))
        .store(word, Ordering::SeqCst);
}

/// Atomically takes back a still-POSTED word (recovery reclaiming the
/// dead thread's own unclaimed batch). The CAS arbitrates against a
/// live winner claiming concurrently: `false` means a winner got there
/// first and now owns the publish.
pub(crate) fn take_posted(mem: &dyn cxl_pod::PodMemory, slot: u32, observed: u64) -> bool {
    mem.segment()
        .atomic_u64(mem.layout().comb_at(slot))
        .compare_exchange(observed, EMPTY, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
}

/// The EMPTY request word (recovery releases words with this).
pub(crate) const EMPTY_WORD: u64 = EMPTY;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrips_fields() {
        for kind in [HeapKind::Small, HeapKind::Large] {
            let w = pack(CLAIMED, kind, 12345, 200, 7);
            assert_eq!(state(w), CLAIMED);
            assert_eq!(kind_of(w), Some(kind));
            assert_eq!(slab_of(w), 12345);
            assert_eq!(k_of(w), 200);
            assert_eq!(winner_of(w), 7);
            assert!(is_pending(w));
            assert!(is_claimed_by(w, 7));
            assert!(!is_claimed_by(w, 8));
            let d = done_word(w, 9);
            assert_eq!(state(d), DONE);
            assert_eq!(k_of(d), 200);
            assert_eq!(winner_of(d), 9);
            assert!(!is_pending(d));
        }
        assert!(!is_pending(EMPTY));
        assert_eq!(kind_of(EMPTY), None);
    }

    #[test]
    fn governor_engages_under_retries_and_disengages_when_quiet() {
        let c = Combiner::new(true);
        assert!(!c.should_combine());
        // A noisy window: every publish retried.
        for _ in 0..GOVERNOR_WINDOW {
            c.note_retry();
            c.note_publish();
        }
        assert!(c.should_combine());
        assert!(c.effective_batch(1) >= 2);
        // Keep it noisy: the boost widens monotonically toward 255.
        for _ in 0..(GOVERNOR_WINDOW * 16) {
            c.note_retry();
            c.note_publish();
        }
        assert_eq!(c.effective_batch(1), 255);
        // Quiet windows narrow and eventually disengage.
        for _ in 0..(GOVERNOR_WINDOW * 16) {
            c.note_publish();
        }
        assert!(!c.should_combine());
        assert_eq!(c.effective_batch(3), 3, "configured width is the floor");
    }

    #[test]
    fn unpermitted_governor_never_engages() {
        let c = Combiner::new(false);
        for _ in 0..(GOVERNOR_WINDOW * 4) {
            c.note_retry();
            c.note_publish();
        }
        assert!(!c.should_combine());
    }

    #[test]
    fn in_flight_mirror_blocks_buffering() {
        let c = Combiner::new(true);
        assert!(!c.blocks_buffering(HeapKind::Small, 4));
        c.set_in_flight(HeapKind::Small, 4);
        assert!(c.blocks_buffering(HeapKind::Small, 4));
        assert!(!c.blocks_buffering(HeapKind::Large, 4));
        assert!(!c.blocks_buffering(HeapKind::Small, 5));
        c.clear_in_flight();
        assert!(!c.blocks_buffering(HeapKind::Small, 4));
    }
}
