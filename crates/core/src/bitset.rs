//! Block bitsets (`SWccDesc.free`).
//!
//! Each slab descriptor embeds a bitset with one bit per block — set
//! means *free*. Like mimalloc's sharded free lists, a per-slab bitset
//! keeps allocation state local to the slab, decreasing contention and
//! improving spatial locality (paper §3.2.1). The bitset is single-writer
//! (the slab's owner), so words are plain loads and stores through the
//! pod memory — no atomics, no flushes on the fast path.

use cxl_pod::{CoreId, PodMemory};

/// A view of one slab's free-block bitset inside the segment.
#[derive(Clone, Copy)]
pub struct BlockBits<'m> {
    mem: &'m dyn PodMemory,
    /// Segment offset of the first word.
    base: u64,
    /// Number of meaningful bits (blocks in the slab at its current
    /// class).
    nbits: u32,
}

impl<'m> std::fmt::Debug for BlockBits<'m> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockBits")
            .field("base", &self.base)
            .field("nbits", &self.nbits)
            .finish()
    }
}

impl<'m> BlockBits<'m> {
    /// Creates a view of `nbits` bits starting at segment offset `base`.
    pub fn new(mem: &'m dyn PodMemory, base: u64, nbits: u32) -> Self {
        debug_assert_eq!(base % 8, 0);
        BlockBits {
            mem,
            base,
            nbits,
        }
    }

    /// Number of meaningful bits.
    #[inline]
    pub fn len(&self) -> u32 {
        self.nbits
    }

    /// Whether the view covers zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    #[inline]
    fn words(&self) -> u32 {
        self.nbits.div_ceil(64)
    }

    #[inline]
    fn word_offset(&self, word: u32) -> u64 {
        self.base + word as u64 * 8
    }

    /// Reads bit `bit`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `bit` is out of range.
    pub fn get(&self, core: CoreId, bit: u32) -> bool {
        debug_assert!(bit < self.nbits);
        let word = self.mem.load_u64(core, self.word_offset(bit / 64));
        word & (1 << (bit % 64)) != 0
    }

    /// Sets bit `bit` (marks the block free).
    pub fn set(&self, core: CoreId, bit: u32) {
        debug_assert!(bit < self.nbits);
        let off = self.word_offset(bit / 64);
        let word = self.mem.load_u64(core, off);
        self.mem.store_u64(core, off, word | 1 << (bit % 64));
    }

    /// Clears bit `bit` (marks the block allocated).
    pub fn clear(&self, core: CoreId, bit: u32) {
        debug_assert!(bit < self.nbits);
        let off = self.word_offset(bit / 64);
        let word = self.mem.load_u64(core, off);
        self.mem.store_u64(core, off, word & !(1 << (bit % 64)));
    }

    /// Finds the lowest set (free) bit, if any.
    pub fn find_set(&self, core: CoreId) -> Option<u32> {
        for w in 0..self.words() {
            let mut word = self.mem.load_u64(core, self.word_offset(w));
            if w == self.words() - 1 && !self.nbits.is_multiple_of(64) {
                word &= (1u64 << (self.nbits % 64)) - 1;
            }
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros());
            }
        }
        None
    }

    /// Sets all `nbits` bits (slab initialization: every block free) and
    /// zeroes any tail bits of the last word.
    pub fn set_all(&self, core: CoreId) {
        for w in 0..self.words() {
            let mut word = u64::MAX;
            if w == self.words() - 1 && !self.nbits.is_multiple_of(64) {
                word = (1u64 << (self.nbits % 64)) - 1;
            }
            self.mem.store_u64(core, self.word_offset(w), word);
        }
    }

    /// Counts set (free) bits.
    pub fn count_set(&self, core: CoreId) -> u32 {
        let mut count = 0;
        for w in 0..self.words() {
            let mut word = self.mem.load_u64(core, self.word_offset(w));
            if w == self.words() - 1 && !self.nbits.is_multiple_of(64) {
                word &= (1u64 << (self.nbits % 64)) - 1;
            }
            count += word.count_ones();
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_pod::{Pod, PodConfig};

    fn fixture() -> (Pod, u64) {
        let pod = Pod::new(PodConfig::small_for_tests()).unwrap();
        let base = pod.layout().small.bitset_at(0);
        (pod, base)
    }

    #[test]
    fn set_clear_get() {
        let (pod, base) = fixture();
        let bits = BlockBits::new(pod.memory().as_ref(), base, 100);
        let core = CoreId(0);
        assert!(!bits.get(core, 3));
        bits.set(core, 3);
        assert!(bits.get(core, 3));
        bits.clear(core, 3);
        assert!(!bits.get(core, 3));
    }

    #[test]
    fn set_all_and_count() {
        let (pod, base) = fixture();
        let core = CoreId(0);
        for nbits in [1u32, 63, 64, 65, 100, 4096] {
            let bits = BlockBits::new(pod.memory().as_ref(), base, nbits);
            bits.set_all(core);
            assert_eq!(bits.count_set(core), nbits, "nbits={nbits}");
            assert_eq!(bits.find_set(core), Some(0));
        }
    }

    #[test]
    fn find_skips_cleared() {
        let (pod, base) = fixture();
        let bits = BlockBits::new(pod.memory().as_ref(), base, 130);
        let core = CoreId(0);
        bits.set_all(core);
        for expected in 0..130 {
            assert_eq!(bits.find_set(core), Some(expected));
            bits.clear(core, expected);
        }
        assert_eq!(bits.find_set(core), None);
        assert_eq!(bits.count_set(core), 0);
    }

    #[test]
    fn tail_bits_do_not_leak() {
        let (pod, base) = fixture();
        let core = CoreId(0);
        // A 4096-bit view sets all words; a narrower re-view over the
        // same memory must mask the tail.
        let wide = BlockBits::new(pod.memory().as_ref(), base, 128);
        wide.set_all(core);
        let narrow = BlockBits::new(pod.memory().as_ref(), base, 70);
        assert_eq!(narrow.count_set(core), 70);
        for bit in 0..70 {
            narrow.clear(core, bit);
        }
        assert_eq!(narrow.find_set(core), None, "tail bits must be masked");
    }

    #[test]
    fn words_are_independent() {
        let (pod, base) = fixture();
        let bits = BlockBits::new(pod.memory().as_ref(), base, 256);
        let core = CoreId(0);
        bits.set(core, 0);
        bits.set(core, 64);
        bits.set(core, 255);
        assert_eq!(bits.count_set(core), 3);
        bits.clear(core, 64);
        assert!(bits.get(core, 0));
        assert!(bits.get(core, 255));
        assert!(!bits.get(core, 64));
    }
}
