//! Block bitsets (`SWccDesc.free`).
//!
//! Each slab descriptor embeds a bitset with one bit per block — set
//! means *free*. Like mimalloc's sharded free lists, a per-slab bitset
//! keeps allocation state local to the slab, decreasing contention and
//! improving spatial locality (paper §3.2.1). The bitset is single-writer
//! (the slab's owner), so words are plain loads and stores through the
//! pod memory — no atomics, no flushes on the fast path.

use cxl_pod::{CoreId, PodMemory};

/// A view of one slab's free-block bitset inside the segment.
#[derive(Clone, Copy)]
pub struct BlockBits<'m> {
    mem: &'m dyn PodMemory,
    /// Segment offset of the first word.
    base: u64,
    /// Number of meaningful bits (blocks in the slab at its current
    /// class).
    nbits: u32,
}

impl<'m> std::fmt::Debug for BlockBits<'m> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockBits")
            .field("base", &self.base)
            .field("nbits", &self.nbits)
            .finish()
    }
}

impl<'m> BlockBits<'m> {
    /// Creates a view of `nbits` bits starting at segment offset `base`.
    pub fn new(mem: &'m dyn PodMemory, base: u64, nbits: u32) -> Self {
        debug_assert_eq!(base % 8, 0);
        BlockBits {
            mem,
            base,
            nbits,
        }
    }

    /// Number of meaningful bits.
    #[inline]
    pub fn len(&self) -> u32 {
        self.nbits
    }

    /// Whether the view covers zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    #[inline]
    fn words(&self) -> u32 {
        self.nbits.div_ceil(64)
    }

    #[inline]
    fn word_offset(&self, word: u32) -> u64 {
        self.base + word as u64 * 8
    }

    /// Reads bit `bit`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `bit` is out of range.
    pub fn get(&self, core: CoreId, bit: u32) -> bool {
        debug_assert!(bit < self.nbits);
        let word = self.mem.load_u64(core, self.word_offset(bit / 64));
        word & (1 << (bit % 64)) != 0
    }

    /// Sets bit `bit` (marks the block free).
    pub fn set(&self, core: CoreId, bit: u32) {
        debug_assert!(bit < self.nbits);
        let off = self.word_offset(bit / 64);
        let word = self.mem.load_u64(core, off);
        self.mem.store_u64(core, off, word | 1 << (bit % 64));
    }

    /// Clears bit `bit` (marks the block allocated).
    pub fn clear(&self, core: CoreId, bit: u32) {
        debug_assert!(bit < self.nbits);
        let off = self.word_offset(bit / 64);
        let word = self.mem.load_u64(core, off);
        self.mem.store_u64(core, off, word & !(1 << (bit % 64)));
    }

    /// Finds the lowest set (free) bit, if any.
    pub fn find_set(&self, core: CoreId) -> Option<u32> {
        self.find_set_from(core, 0)
    }

    /// Finds the next set (free) bit at or after `start`, wrapping to the
    /// bits below `start` when the tail holds none — the rover scan. `start` is a *hint*: any value (even out of range, which is
    /// treated as 0) yields a correct answer, because every candidate
    /// word is re-read from the durable bitset; only the scan order —
    /// never the result's validity — depends on it.
    ///
    /// With `start == 0` the word loads are exactly those of the classic
    /// scan-from-zero, so paths that do not carry a rover are
    /// byte-identical in the simulated-traffic model.
    pub fn find_set_from(&self, core: CoreId, start: u32) -> Option<u32> {
        let words = self.words();
        if words == 0 {
            return None;
        }
        let (w0, bit0) = if start < self.nbits {
            (start / 64, start % 64)
        } else {
            (0, 0)
        };
        // When the scan starts mid-word, the first word is visited twice:
        // high bits first, then (after a full wrap) its low bits.
        let extra = (bit0 != 0) as u32;
        for i in 0..words + extra {
            let w = (w0 + i) % words;
            let mut word = self.mem.load_u64(core, self.word_offset(w));
            if w == words - 1 && !self.nbits.is_multiple_of(64) {
                word &= (1u64 << (self.nbits % 64)) - 1;
            }
            if i == 0 {
                word &= !0u64 << bit0;
            } else if i == words {
                word &= (1u64 << bit0) - 1;
            }
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros());
            }
        }
        None
    }

    /// Sets all `nbits` bits (slab initialization: every block free) and
    /// zeroes any tail bits of the last word. Full words go through the
    /// backend's bulk span store, so simulated backends charge one
    /// contiguous traversal instead of per-word round trips.
    pub fn set_all(&self, core: CoreId) {
        const ONES: [u64; SPAN_WORDS] = [u64::MAX; SPAN_WORDS];
        let full = self.nbits / 64;
        let mut w = 0;
        while w < full {
            let n = ((full - w) as usize).min(SPAN_WORDS);
            self.mem.store_u64_span(core, self.word_offset(w), &ONES[..n]);
            w += n as u32;
        }
        if !self.nbits.is_multiple_of(64) {
            self.mem
                .store_u64(core, self.word_offset(full), (1u64 << (self.nbits % 64)) - 1);
        }
    }

    /// Counts set (free) bits. Full words are read through the backend's
    /// bulk span load (the `detector_tick` fast path); the masked tail
    /// word stays a scalar load.
    pub fn count_set(&self, core: CoreId) -> u32 {
        let mut buf = [0u64; SPAN_WORDS];
        let full = self.nbits / 64;
        let mut count = 0;
        let mut w = 0;
        while w < full {
            let n = ((full - w) as usize).min(SPAN_WORDS);
            let dst = &mut buf[..n];
            self.mem.load_u64_span(core, self.word_offset(w), dst);
            count += dst.iter().map(|x| x.count_ones()).sum::<u32>();
            w += n as u32;
        }
        if !self.nbits.is_multiple_of(64) {
            let word = self.mem.load_u64(core, self.word_offset(full));
            count += (word & ((1u64 << (self.nbits % 64)) - 1)).count_ones();
        }
        count
    }
}

/// Stack-buffer width for bulk span transfers: covers the deepest slab
/// bitset (the 8-byte class, 4096 blocks = 64 words) in one span.
const SPAN_WORDS: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_pod::{Pod, PodConfig};

    fn fixture() -> (Pod, u64) {
        let pod = Pod::new(PodConfig::small_for_tests()).unwrap();
        let base = pod.layout().small.bitset_at(0);
        (pod, base)
    }

    #[test]
    fn set_clear_get() {
        let (pod, base) = fixture();
        let bits = BlockBits::new(pod.memory().as_ref(), base, 100);
        let core = CoreId(0);
        assert!(!bits.get(core, 3));
        bits.set(core, 3);
        assert!(bits.get(core, 3));
        bits.clear(core, 3);
        assert!(!bits.get(core, 3));
    }

    #[test]
    fn set_all_and_count() {
        let (pod, base) = fixture();
        let core = CoreId(0);
        for nbits in [1u32, 63, 64, 65, 100, 4096] {
            let bits = BlockBits::new(pod.memory().as_ref(), base, nbits);
            bits.set_all(core);
            assert_eq!(bits.count_set(core), nbits, "nbits={nbits}");
            assert_eq!(bits.find_set(core), Some(0));
        }
    }

    #[test]
    fn find_skips_cleared() {
        let (pod, base) = fixture();
        let bits = BlockBits::new(pod.memory().as_ref(), base, 130);
        let core = CoreId(0);
        bits.set_all(core);
        for expected in 0..130 {
            assert_eq!(bits.find_set(core), Some(expected));
            bits.clear(core, expected);
        }
        assert_eq!(bits.find_set(core), None);
        assert_eq!(bits.count_set(core), 0);
    }

    #[test]
    fn tail_bits_do_not_leak() {
        let (pod, base) = fixture();
        let core = CoreId(0);
        // A 4096-bit view sets all words; a narrower re-view over the
        // same memory must mask the tail.
        let wide = BlockBits::new(pod.memory().as_ref(), base, 128);
        wide.set_all(core);
        let narrow = BlockBits::new(pod.memory().as_ref(), base, 70);
        assert_eq!(narrow.count_set(core), 70);
        for bit in 0..70 {
            narrow.clear(core, bit);
        }
        assert_eq!(narrow.find_set(core), None, "tail bits must be masked");
    }

    #[test]
    fn find_set_from_wraps_and_matches_scan(){
        let (pod, base) = fixture();
        let core = CoreId(0);
        for nbits in [1u32, 63, 64, 65, 130, 512, 4096] {
            let bits = BlockBits::new(pod.memory().as_ref(), base, nbits);
            // A sparse pattern: a few set bits scattered over the range.
            let set: Vec<u32> = [0u32, 1, 62, 63, 64, 100, 511, 4090]
                .iter()
                .copied()
                .filter(|&b| b < nbits)
                .collect();
            for bit in 0..nbits {
                bits.clear(core, bit);
            }
            for &b in &set {
                bits.set(core, b);
            }
            for start in 0..nbits.min(200) {
                // Reference: first set bit >= start, else wrap to lowest.
                let expected = set
                    .iter()
                    .copied()
                    .find(|&b| b >= start)
                    .or_else(|| set.first().copied());
                assert_eq!(
                    bits.find_set_from(core, start),
                    expected,
                    "nbits={nbits} start={start}"
                );
            }
            // Out-of-range hints degrade to scan-from-zero.
            assert_eq!(bits.find_set_from(core, nbits + 7), set.first().copied());
            assert_eq!(bits.find_set_from(core, u32::MAX), set.first().copied());
        }
    }

    #[test]
    fn find_set_from_empty_bitset() {
        let (pod, base) = fixture();
        let core = CoreId(0);
        let bits = BlockBits::new(pod.memory().as_ref(), base, 130);
        for bit in 0..130 {
            bits.clear(core, bit);
        }
        for start in [0u32, 1, 63, 64, 129, 500] {
            assert_eq!(bits.find_set_from(core, start), None);
        }
    }

    #[test]
    fn find_set_from_tail_bits_masked() {
        let (pod, base) = fixture();
        let core = CoreId(0);
        // Pollute the word beyond nbits, then check the narrow view
        // never reports a tail bit no matter where the rover starts.
        let wide = BlockBits::new(pod.memory().as_ref(), base, 128);
        wide.set_all(core);
        let narrow = BlockBits::new(pod.memory().as_ref(), base, 70);
        for bit in 0..70 {
            narrow.clear(core, bit);
        }
        for start in 0..70 {
            assert_eq!(narrow.find_set_from(core, start), None, "start={start}");
        }
    }

    #[test]
    fn words_are_independent() {
        let (pod, base) = fixture();
        let bits = BlockBits::new(pod.memory().as_ref(), base, 256);
        let core = CoreId(0);
        bits.set(core, 0);
        bits.set(core, 64);
        bits.set(core, 255);
        assert_eq!(bits.count_set(core), 3);
        bits.clear(core, 64);
        assert!(bits.get(core, 0));
        assert!(bits.get(core, 255));
        assert!(!bits.get(core, 64));
    }
}
