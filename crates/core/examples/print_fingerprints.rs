//! Recomputes every pinned golden fingerprint and, with `--bless` (or
//! `CXL_BLESS_FINGERPRINTS=1`), rewrites
//! `tests/common/golden_fingerprints.rs` in one pass.
//!
//! ```text
//! cargo run -p cxl-core --release --example print_fingerprints
//! cargo run -p cxl-core --release --example print_fingerprints -- --bless
//! ```
//!
//! Always prints an old-vs-new diff summary, so a re-pin is a reviewed,
//! deliberate act: every changed line names the profile and seed whose
//! observable behaviour moved. See EXPERIMENTS.md for the protocol.

use cxl_core::explore::Explorer;
use cxl_core::sched::{self, FaultPlan, Schedule, SimConfig, Step};
use cxl_pod::{FabricConfig, Pod};
use std::fmt::Write as _;

// The currently-pinned values, compiled in from the same file the
// tests include — the diff below is exact, not parsed.
mod golden {
    include!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/common/golden_fingerprints.rs"
    ));
}

/// The scripted schedule `trace_determinism.rs` pins (kept in sync
/// with that file by hand; the pinned value moving unexpectedly is the
/// signal that they diverged).
fn trace_schedule() -> Schedule {
    Schedule {
        seed: 42,
        hosts: 3,
        steps: vec![
            Step::Alloc { host: 0, size: 128 },
            Step::Alloc { host: 1, size: 128 },
            Step::Alloc { host: 2, size: 128 },
            Step::Crash {
                host: 2,
                at: "slab::push_global::after_cas",
                skip: 3,
            },
            Step::Alloc { host: 0, size: 64 },
            Step::Recover { host: 2, via: 0 },
            Step::Alloc { host: 2, size: 64 },
        ],
    }
}

fn trace_fingerprint() -> u64 {
    let config = SimConfig {
        hosts: 3,
        ..SimConfig::default()
    };
    let pod = Pod::with_simulation(config.pod_config(), config.mode).unwrap();
    let tracer = pod.memory().tracer().expect("sim pods carry a tracer");
    tracer.arm();
    sched::run_on(&pod, &config, &trace_schedule(), &FaultPlan::none()).unwrap();
    tracer.fingerprint()
}

/// Same scripted schedule on a congested-fabric pod: schedule
/// fingerprints cannot see latency, so the *trace stream* (which
/// carries every charged nanosecond, fabric waits included) is what
/// pins congested-cost determinism.
fn trace_fingerprint_congested() -> u64 {
    let config = SimConfig {
        hosts: 3,
        fabric: Some(FabricConfig::congested()),
        ..SimConfig::default()
    };
    let pod = Pod::with_simulation_fabric(
        config.pod_config(),
        config.mode,
        config.fabric.unwrap(),
    )
    .unwrap();
    let tracer = pod.memory().tracer().expect("sim pods carry a tracer");
    tracer.arm();
    sched::run_on(&pod, &config, &trace_schedule(), &FaultPlan::none()).unwrap();
    tracer.fingerprint()
}

fn recompute(explorer: &Explorer, pinned: &[(u64, u64)]) -> Vec<(u64, u64)> {
    pinned
        .iter()
        .map(|&(seed, _)| {
            let fp = explorer
                .run_seed(seed)
                .unwrap_or_else(|e| panic!("pinned seed {seed} fails outright: {e:?}"))
                .fingerprint;
            (seed, fp)
        })
        .collect()
}

fn diff(label: &str, old: &[(u64, u64)], new: &[(u64, u64)], changed: &mut usize) {
    for (&(seed, was), &(_, now)) in old.iter().zip(new) {
        if was == now {
            println!("  {label:<8} seed {seed:>3}  {now:#018x}  (unchanged)");
        } else {
            println!("  {label:<8} seed {seed:>3}  {was:#018x} -> {now:#018x}");
            *changed += 1;
        }
    }
}

fn main() {
    let bless = std::env::args().any(|a| a == "--bless")
        || std::env::var("CXL_BLESS_FINGERPRINTS").is_ok_and(|v| v == "1");

    let classic = recompute(&Explorer::default(), golden::CLASSIC);
    let liveness_explorer = Explorer {
        liveness: true,
        ..Explorer::default()
    };
    let liveness = recompute(&liveness_explorer, golden::LIVENESS);
    let batched_explorer = Explorer {
        liveness: true,
        config: SimConfig {
            remote_free_batch: 8,
            magazine_capacity: 4,
            coalesce_fences: true,
            ..SimConfig::default()
        },
        ..Explorer::default()
    };
    let batched = recompute(&batched_explorer, golden::BATCHED);
    let trace = trace_fingerprint();
    let trace_congested = trace_fingerprint_congested();

    let mut changed = 0;
    println!("golden fingerprints (old -> new):");
    diff("classic", golden::CLASSIC, &classic, &mut changed);
    diff("liveness", golden::LIVENESS, &liveness, &mut changed);
    diff("batched", golden::BATCHED, &batched, &mut changed);
    if trace == golden::TRACE_SCRIPTED {
        println!("  trace    scripted  {trace:#018x}  (unchanged)");
    } else {
        println!(
            "  trace    scripted  {:#018x} -> {trace:#018x}",
            golden::TRACE_SCRIPTED
        );
        changed += 1;
    }
    if trace_congested == golden::TRACE_CONGESTED {
        println!("  trace    congested {trace_congested:#018x}  (unchanged)");
    } else {
        println!(
            "  trace    congested {:#018x} -> {trace_congested:#018x}",
            golden::TRACE_CONGESTED
        );
        changed += 1;
    }
    let total = classic.len() + liveness.len() + batched.len() + 2;
    println!("{changed} of {total} pins changed");

    if !bless {
        if changed > 0 {
            println!("run again with --bless to rewrite tests/common/golden_fingerprints.rs");
        }
        return;
    }

    let mut out = String::new();
    let _ = write!(
        out,
        "// Golden replay fingerprints, pinned.\n//\n\
         // GENERATED — regenerate with `cargo run -p cxl-core --release\n\
         // --example print_fingerprints -- --bless` (or set\n\
         // CXL_BLESS_FINGERPRINTS=1), which re-runs every pinned schedule,\n\
         // prints an old-vs-new diff summary, and rewrites this file. See\n\
         // EXPERIMENTS.md (\"Golden-fingerprint re-pin protocol\") for when a\n\
         // re-pin is legitimate.\n//\n\
         // A fingerprint mixes every step outcome, allocated offset, live-set\n\
         // length, and recovery outcome of a run — so these constants change\n\
         // only when the allocator's *observable* behaviour changes, never from\n\
         // pure substrate optimizations (caches, shadows, counters).\n//\n\
         // Each test target include!s this file and uses only some pins, so\n\
         // every constant carries allow(dead_code).\n\n\
         /// Classic explorer profile (`Explorer::default()`): (seed, fingerprint).\n\
         #[allow(dead_code)]\n\
         pub const CLASSIC: &[(u64, u64)] = &[\n"
    );
    for (seed, fp) in &classic {
        let _ = writeln!(out, "    ({seed}, {fp:#018x}),");
    }
    let _ = write!(
        out,
        "];\n\n/// Liveness profile (`liveness: true`): (seed, fingerprint).\n\
         #[allow(dead_code)]\n\
         pub const LIVENESS: &[(u64, u64)] = &[\n"
    );
    for (seed, fp) in &liveness {
        let _ = writeln!(out, "    ({seed}, {fp:#018x}),");
    }
    let _ = write!(
        out,
        "];\n\n/// Liveness profile with batched remote frees, magazines, and fence\n\
         /// coalescing (PR 4): (seed, fingerprint).\n\
         #[allow(dead_code)]\n\
         pub const BATCHED: &[(u64, u64)] = &[\n"
    );
    for (seed, fp) in &batched {
        let _ = writeln!(out, "    ({seed}, {fp:#018x}),");
    }
    let _ = write!(
        out,
        "];\n\n/// Trace-stream fingerprint of the scripted crash/recovery schedule in\n\
         /// `trace_determinism.rs` (tracer armed, 3 hosts, seed 42).\n\
         #[allow(dead_code)]\n\
         pub const TRACE_SCRIPTED: u64 = {trace:#018x};\n\n\
         /// Trace-stream fingerprint of the same scripted schedule on a pod with\n\
         /// the congested fabric preset (`FabricConfig::congested()`): pins the\n\
         /// cost determinism of the fabric layer, which schedule fingerprints\n\
         /// (outcomes and offsets only) cannot see.\n\
         #[allow(dead_code)]\n\
         pub const TRACE_CONGESTED: u64 = {trace_congested:#018x};\n"
    );

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/common/golden_fingerprints.rs"
    );
    std::fs::write(path, out).expect("write golden_fingerprints.rs");
    println!("blessed {path}");
}
