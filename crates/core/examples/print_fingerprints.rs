//! Prints replay fingerprints for a fixed set of seeds (classic and
//! liveness schedule profiles). Used to confirm that substrate changes
//! keep `sched` replay byte-identical.

use cxl_core::explore::Explorer;
use cxl_core::sched::SimConfig;

fn main() {
    let classic = Explorer::default();
    for seed in [3u64, 11, 12, 17, 91] {
        let r = classic.run_seed(seed).unwrap();
        println!("classic {seed} {:#018x}", r.fingerprint);
    }
    let liveness = Explorer {
        liveness: true,
        ..Explorer::default()
    };
    for seed in [5u64, 23, 47] {
        let r = liveness.run_seed(seed).unwrap();
        println!("liveness {seed} {:#018x}", r.fingerprint);
    }
    // The liveness profile with every PR-4 amortization enabled
    // (batched remote frees, magazines, fence coalescing) — pins that
    // the batched paths stay deterministic under crashes + adoption.
    let batched = Explorer {
        liveness: true,
        config: SimConfig {
            remote_free_batch: 8,
            magazine_capacity: 4,
            coalesce_fences: true,
            ..SimConfig::default()
        },
        ..Explorer::default()
    };
    for seed in [23u64, 47] {
        let r = batched.run_seed(seed).unwrap();
        println!("batched {seed} {:#018x}", r.fingerprint);
    }
}
