//! Prints replay fingerprints for a fixed set of seeds (classic and
//! liveness schedule profiles). Used to confirm that substrate changes
//! keep `sched` replay byte-identical.

use cxl_core::explore::Explorer;

fn main() {
    let classic = Explorer::default();
    for seed in [3u64, 11, 12, 17, 91] {
        let r = classic.run_seed(seed).unwrap();
        println!("classic {seed} {:#018x}", r.fingerprint);
    }
    let liveness = Explorer {
        liveness: true,
        ..Explorer::default()
    };
    for seed in [5u64, 23, 47] {
        let r = liveness.run_seed(seed).unwrap();
        println!("liveness {seed} {:#018x}", r.fingerprint);
    }
}
