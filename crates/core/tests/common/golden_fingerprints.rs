// Golden replay fingerprints, pinned.
//
// GENERATED — regenerate with `cargo run -p cxl-core --release
// --example print_fingerprints -- --bless` (or set
// CXL_BLESS_FINGERPRINTS=1), which re-runs every pinned schedule,
// prints an old-vs-new diff summary, and rewrites this file. See
// EXPERIMENTS.md ("Golden-fingerprint re-pin protocol") for when a
// re-pin is legitimate.
//
// A fingerprint mixes every step outcome, allocated offset, live-set
// length, and recovery outcome of a run — so these constants change
// only when the allocator's *observable* behaviour changes, never from
// pure substrate optimizations (caches, shadows, counters).
//
// Each test target include!s this file and uses only some pins, so
// every constant carries allow(dead_code).

/// Classic explorer profile (`Explorer::default()`): (seed, fingerprint).
#[allow(dead_code)]
pub const CLASSIC: &[(u64, u64)] = &[
    (3, 0xe07ff893a929d366),
    (11, 0x36f865dd1093456b),
    (12, 0x078e3b534aaae6df),
    (17, 0x1a24f90193625841),
    (91, 0x18c983f23fa04836),
];

/// Liveness profile (`liveness: true`): (seed, fingerprint).
#[allow(dead_code)]
pub const LIVENESS: &[(u64, u64)] = &[
    (5, 0x3e653b5093fbfb23),
    (23, 0xbd3d5b821137b186),
    (47, 0x19293bac26aebed6),
];

/// Liveness profile with batched remote frees, magazines, and fence
/// coalescing (PR 4): (seed, fingerprint).
#[allow(dead_code)]
pub const BATCHED: &[(u64, u64)] = &[
    (23, 0x55b495b7daa34c14),
    (47, 0x1234099ff258b1e4),
];

/// Trace-stream fingerprint of the scripted crash/recovery schedule in
/// `trace_determinism.rs` (tracer armed, 3 hosts, seed 42).
#[allow(dead_code)]
pub const TRACE_SCRIPTED: u64 = 0x51c9a9d296a92ea4;

/// Trace-stream fingerprint of the same scripted schedule on a pod with
/// the congested fabric preset (`FabricConfig::congested()`): pins the
/// cost determinism of the fabric layer, which schedule fingerprints
/// (outcomes and offsets only) cannot see.
#[allow(dead_code)]
pub const TRACE_CONGESTED: u64 = 0x32d54e44deec2580;
