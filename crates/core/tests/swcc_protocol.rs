//! SWcc protocol tests: the allocator must be correct when run over a
//! pod whose SWcc region has *no* hardware coherence — every metadata
//! line a core caches stays stale until that core flushes (paper §3.2.2).
//!
//! These tests run the full allocator over `SimMemory` in `Limited` and
//! `None` modes, where any missing flush/fence in the protocol shows up
//! as a deterministic wrong answer.

use cxl_core::{AttachOptions, Cxlalloc, OffsetPtr};
use cxl_pod::{CoreId, HwccMode, Pod, PodConfig};

fn setup(mode: HwccMode) -> (Pod, Cxlalloc) {
    let pod = Pod::with_simulation(PodConfig::small_for_tests(), mode).unwrap();
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    (pod, heap)
}

fn alloc_free_workout(heap: &Cxlalloc) {
    let mut a = heap.register_thread().unwrap();
    let mut b = heap.register_thread().unwrap();
    // Local churn on a...
    let mut live = Vec::new();
    for i in 0..600 {
        live.push(a.alloc(8 + (i * 7) % 1000).unwrap());
        if live.len() > 100 {
            a.dealloc(live.swap_remove(i % 100)).unwrap();
        }
    }
    // ...remote frees from b (including a full producer/consumer slab
    // steal)...
    for p in live.drain(..) {
        b.dealloc(p).unwrap();
    }
    // ...and churn on b afterwards, reusing stolen slabs.
    for i in 0..600 {
        let p = b.alloc(16 + (i * 5) % 500).unwrap();
        b.dealloc(p).unwrap();
    }
    // Quiesce: the checker reads durable memory, which lags the owners'
    // caches until they write back.
    a.flush_cache();
    b.flush_cache();
    heap.check_invariants(a.core()).unwrap();
}

#[test]
fn allocator_correct_under_limited_hwcc() {
    let (_pod, heap) = setup(HwccMode::Limited);
    alloc_free_workout(&heap);
}

#[test]
fn allocator_correct_under_no_hwcc_mcas() {
    let (pod, heap) = setup(HwccMode::None);
    alloc_free_workout(&heap);
    // Synchronization must have gone through the NMP, not coherent CAS.
    let stats = pod.memory().stats();
    assert!(stats.mcas_ok > 0, "expected mCAS traffic, got {stats:?}");
    assert_eq!(stats.cas_ok + stats.cas_fail, 0, "no coherent CAS allowed");
}

#[test]
fn full_mode_needs_no_writebacks() {
    let (pod, heap) = setup(HwccMode::Full);
    alloc_free_workout(&heap);
    let stats = pod.memory().stats();
    assert_eq!(stats.writebacks, 0);
    assert_eq!(stats.line_fills, 0);
}

#[test]
fn owner_metadata_stays_cached_for_local_ops() {
    // The §3.2.2 performance claim: a thread operating on its own slabs
    // keeps SWccDesc cached — local alloc/free cause no writebacks after
    // warmup (flushes happen only at ownership transitions).
    let (pod, heap) = setup(HwccMode::Limited);
    let mut t = heap.register_thread().unwrap();
    // Warm up: acquire a slab.
    let warm = t.alloc(64).unwrap();
    let before = pod.memory().stats();
    // Steady-state local churn inside the same slab.
    for _ in 0..200 {
        let p = t.alloc(64).unwrap();
        t.dealloc(p).unwrap();
    }
    let delta = pod.memory().stats().since(&before);
    // Every alloc/free logs (flush of the log line ⇒ writebacks), and
    // those log-line refills are the *only* line fills in steady state:
    // the slab descriptor never leaves the owner's reach (it is served
    // from the owner's DRAM shadow, and before that change stayed
    // resident in the simulated cache — either way, no CXL traffic).
    assert!(
        delta.line_fills <= delta.flushes,
        "steady-state fills must be log-line refills only: {delta:?}"
    );
    // The owner shadow keeps header/free-count reads out of the
    // simulated cache entirely: the remaining loads are bitset words
    // and list heads — a handful per operation, not the descriptor
    // round trips of a shadowless owner.
    let ops = 400u64;
    assert!(
        delta.loads <= ops * 5,
        "owner descriptor reads should not reach the cache: {delta:?}"
    );
    t.dealloc(warm).unwrap();
}

#[test]
fn nonrecoverable_mode_skips_log_writebacks() {
    let (pod, heap_rec) = setup(HwccMode::Limited);
    let mut t = heap_rec.register_thread().unwrap();
    let p = t.alloc(64).unwrap();
    t.dealloc(p).unwrap();
    let base = pod.memory().stats();
    for _ in 0..100 {
        let p = t.alloc(64).unwrap();
        t.dealloc(p).unwrap();
    }
    let rec = pod.memory().stats().since(&base);

    let pod2 = Pod::with_simulation(PodConfig::small_for_tests(), HwccMode::Limited).unwrap();
    let heap_non = Cxlalloc::attach(
        pod2.spawn_process(),
        AttachOptions {
            recoverable: false,
            ..AttachOptions::default()
        },
    )
    .unwrap();
    let mut t2 = heap_non.register_thread().unwrap();
    let p = t2.alloc(64).unwrap();
    t2.dealloc(p).unwrap();
    let base = pod2.memory().stats();
    for _ in 0..100 {
        let p = t2.alloc(64).unwrap();
        t2.dealloc(p).unwrap();
    }
    let non = pod2.memory().stats().since(&base);
    assert!(
        non.writebacks * 4 < rec.writebacks.max(1),
        "nonrecoverable should write back far less: rec={rec:?} non={non:?}"
    );
}

#[test]
fn remote_frees_are_visible_across_stale_caches() {
    // The crux of the counter design: a remote freer may hold an
    // arbitrarily stale copy of the slab descriptor, yet the decrement
    // (HWcc) is still correct.
    let (_pod, heap) = setup(HwccMode::Limited);
    let mut producer = heap.register_thread().unwrap();
    let mut consumer = heap.register_thread().unwrap();

    // The consumer caches the descriptor's owner by doing one remote
    // free early...
    let early: Vec<OffsetPtr> = (0..512).map(|_| producer.alloc(64).unwrap()).collect();
    consumer.dealloc(early[0]).unwrap();
    // ...then the producer churns the slab through several transitions
    // (fills it, refills), with the consumer's cache going stale.
    for p in &early[1..256] {
        producer.dealloc(*p).unwrap();
    }
    let refill: Vec<OffsetPtr> = (0..255).map(|_| producer.alloc(64).unwrap()).collect();
    // The consumer now drains everything remotely despite its stale view.
    for p in early[256..].iter().chain(refill.iter()) {
        consumer.dealloc(*p).unwrap();
    }
    heap.check_invariants(consumer.core()).unwrap();
}

#[test]
fn cross_core_slab_transfer_sees_fresh_metadata() {
    // Push-to-global flushes; pop-from-global flushes before reading
    // next. If either were missing, the popped slab's metadata would be
    // garbage and init/invariants would fail.
    let (_pod, heap) = setup(HwccMode::Limited);
    let mut a = heap.register_thread().unwrap();
    // Overflow a's unsized list so slabs land on the global list: nine
    // slabs' worth leaves four there after hysteresis retains one
    // emptied slab and the unsized list keeps `unsized_limit` (4).
    let ptrs: Vec<_> = (0..4608).map(|_| a.alloc(64).unwrap()).collect();
    for p in ptrs {
        a.dealloc(p).unwrap();
    }
    let slabs = heap.stats().small_slabs;
    // b pops them from the global list.
    let mut b = heap.register_thread().unwrap();
    let ptrs: Vec<_> = (0..2048).map(|_| b.alloc(64).unwrap()).collect();
    assert_eq!(heap.stats().small_slabs, slabs);
    for p in ptrs {
        b.dealloc(p).unwrap();
    }
    heap.check_invariants(CoreId(0)).unwrap();
}

#[test]
fn concurrent_threads_under_limited_hwcc() {
    // Four threads touching ~20 size classes each need more slab
    // capacity than the default test config.
    let config = PodConfig {
        small_max_slabs: 256,
        ..PodConfig::small_for_tests()
    };
    let pod = Pod::with_simulation(config, HwccMode::Limited).unwrap();
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    std::thread::scope(|s| {
        for i in 0..4 {
            let heap = heap.clone();
            s.spawn(move || {
                let mut t = heap.register_thread().unwrap();
                let mut live = Vec::new();
                for op in 0..400 {
                    live.push(t.alloc(8 + (op * 11 + i * 3) % 512).unwrap());
                    if live.len() > 32 {
                        t.dealloc(live.swap_remove(op % 32)).unwrap();
                    }
                }
                for p in live {
                    t.dealloc(p).unwrap();
                }
            });
        }
    });
    heap.check_invariants(CoreId(0)).unwrap();
}

#[test]
fn allocator_correct_under_tiny_evicting_caches() {
    // Bounded per-core caches (8 lines) force silent pseudo-random
    // evictions: dirty metadata is written back at moments the SWcc
    // protocol didn't choose. The single-writer layout must make every
    // such writeback harmless.
    // Unbounded-cache baseline: the same deterministic workout with no
    // silent evictions. (Explicit flushes evict but writer-side clwb
    // writebacks retain lines, so absolute fill counts alone say
    // nothing about eviction pressure.)
    let baseline = {
        let config = PodConfig {
            small_max_slabs: 256,
            ..PodConfig::small_for_tests()
        };
        let pod = Pod::with_simulation(config, HwccMode::Limited).unwrap();
        let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
        alloc_free_workout(&heap);
        pod.memory().stats().line_fills
    };
    for lines in [4usize, 8, 32] {
        let config = PodConfig {
            small_max_slabs: 256,
            ..PodConfig::small_for_tests()
        };
        let pod = Pod::with_simulation_capacity(config, HwccMode::Limited, lines).unwrap();
        let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
        alloc_free_workout(&heap);
        let stats = pod.memory().stats();
        // Evictions force extra refills relative to the unbounded cache.
        assert!(
            stats.line_fills > baseline,
            "tiny caches ({lines} lines) should force refills beyond the \
             unbounded baseline ({baseline}): {stats:?}"
        );
    }
}

#[test]
fn crash_recovery_with_evicting_caches() {
    use cxl_core::crash::{self, CrashPlan};
    let config = PodConfig {
        small_max_slabs: 256,
        ..PodConfig::small_for_tests()
    };
    let pod = Pod::with_simulation_capacity(config, HwccMode::Limited, 8).unwrap();
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    let tid = std::thread::scope(|s| {
        s.spawn(|| {
            let mut t = heap.register_thread().unwrap();
            let tid = t.tid();
            crash::arm(CrashPlan {
                at: "slab::free_local::after_set",
                skip: 40,
            });
            let died = crash::catch(std::panic::AssertUnwindSafe(|| {
                let ptrs: Vec<_> = (0..200).map(|_| t.alloc(64).unwrap()).collect();
                for p in ptrs {
                    t.dealloc(p).unwrap();
                }
            }))
            .is_err();
            crash::disarm();
            assert!(died);
            tid
        })
        .join()
        .unwrap()
    });
    heap.mark_crashed(tid).unwrap();
    let (mut adopted, _) = heap.adopt(tid, CoreId(3)).unwrap();
    for _ in 0..100 {
        let p = adopted.alloc(64).unwrap();
        adopted.dealloc(p).unwrap();
    }
    heap.check_invariants(adopted.core()).unwrap();
}
