//! Determinism of the latency-attribution tracer (`cxl_pod::trace`)
//! under the schedule harness: armed replays of the same schedule must
//! produce byte-identical traces, and a disarmed tracer must record
//! nothing.

use cxl_core::sched::{self, FaultPlan, Schedule, SimConfig, Step};
use cxl_pod::trace::Trace;
use cxl_pod::Pod;

/// A scripted schedule driving the paths the tracer instruments:
/// allocation, crash, recovery (including the durable remote-free
/// republish scan), and post-recovery allocation.
fn schedule() -> Schedule {
    Schedule {
        seed: 42,
        hosts: 3,
        steps: vec![
            Step::Alloc { host: 0, size: 128 },
            Step::Alloc { host: 1, size: 128 },
            Step::Alloc { host: 2, size: 128 },
            Step::Crash {
                host: 2,
                at: "slab::push_global::after_cas",
                skip: 3,
            },
            Step::Alloc { host: 0, size: 64 },
            Step::Recover { host: 2, via: 0 },
            Step::Alloc { host: 2, size: 64 },
        ],
    }
}

/// Runs the schedule on a fresh pod with the tracer armed; returns the
/// canonical trace bytes, the full-stream fingerprint, and the trace.
fn traced_run() -> (Vec<u8>, u64, Trace) {
    let config = SimConfig {
        hosts: 3,
        ..SimConfig::default()
    };
    let pod = Pod::with_simulation(config.pod_config(), config.mode).unwrap();
    let tracer = pod.memory().tracer().expect("sim pods carry a tracer");
    tracer.arm();
    let report = sched::run_on(&pod, &config, &schedule(), &FaultPlan::none()).unwrap();
    assert_eq!(report.recoveries, 1, "schedule must exercise recovery");
    let trace = tracer.snapshot();
    (trace.to_bytes(), tracer.fingerprint(), trace)
}

/// Two replays of the same schedule serialize to identical bytes — the
/// tracer inherits the substrate's determinism, event for event.
#[test]
fn traced_replays_are_byte_identical() {
    let (bytes_a, fp_a, trace_a) = traced_run();
    let (bytes_b, fp_b, _) = traced_run();
    assert!(!trace_a.is_empty(), "armed run must record events");
    assert_eq!(fp_a, fp_b, "full-stream fingerprints must replay");
    assert_eq!(
        bytes_a, bytes_b,
        "trace serialization must be byte-identical across replays"
    );
}

/// The trace fingerprint of the scripted schedule is pinned: it mixes
/// every event word of the run, so it moves only when the allocator's
/// memory-op sequence (or the latency model charging it) changes. If a
/// change here is intentional, print the new value and update it.
#[test]
fn trace_fingerprint_is_pinned() {
    let (_, fp, _) = traced_run();
    // Re-pinned when writer-side durability flushes (oplog `begin` /
    // `clear`, remote-buffer `record`) moved from evicting clflush to
    // line-retaining clwb (`PodMemory::writeback`): the flush/refill
    // pairs on those single-writer lines left the event stream.
    assert_eq!(fp, 0xa2e0a5a882f7aeaf, "got {fp:#018x}");
}

/// Disarmed (the default), the tracer records nothing — the same
/// schedule leaves the rings empty, fingerprint at its seed value.
#[test]
fn disarmed_tracer_records_nothing() {
    let config = SimConfig {
        hosts: 3,
        ..SimConfig::default()
    };
    let pod = Pod::with_simulation(config.pod_config(), config.mode).unwrap();
    let tracer = pod.memory().tracer().expect("sim pods carry a tracer");
    sched::run_on(&pod, &config, &schedule(), &FaultPlan::none()).unwrap();
    assert!(!tracer.enabled());
    assert!(tracer.snapshot().is_empty(), "disarmed run must record nothing");
    assert_eq!(tracer.attribution().total_ns(), 0);
}
