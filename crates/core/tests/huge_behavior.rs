//! Huge-heap behavior: reservation claiming, descriptor lifecycle,
//! hazard offsets, cross-process faulting, cleanup, and reconstruction
//! (paper §3.1.2 and §3.3.2).

use cxl_core::{AllocError, AttachOptions, Cxlalloc};
use cxl_pod::{Pod, PodConfig};

const MIB: usize = 1 << 20;

fn setup() -> (Pod, Cxlalloc) {
    let pod = Pod::new(PodConfig::small_for_tests()).unwrap();
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    (pod, heap)
}

#[test]
fn huge_alloc_maps_and_is_writable() {
    let (pod, heap) = setup();
    let mut t = heap.register_thread().unwrap();
    let p = t.alloc(MIB).unwrap();
    assert!(pod.layout().huge.data.contains(p.offset()));
    assert_eq!(p.offset() % 4096, 0, "huge allocations are page aligned");
    let raw = t.resolve(p, MIB as u64).unwrap();
    unsafe {
        raw.write_bytes(0xCD, MIB);
        assert_eq!(*raw.add(MIB - 1), 0xCD);
    }
    t.dealloc(p).unwrap();
}

#[test]
fn huge_allocations_do_not_overlap() {
    // One hazard slot is held per live mapping, so holding 10 live
    // allocations needs ≥10 slots.
    let config = PodConfig {
        hazards_per_thread: 16,
        ..PodConfig::small_for_tests()
    };
    let pod = Pod::new(config).unwrap();
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    let _ = pod;
    let mut t = heap.register_thread().unwrap();
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for i in 1..=10u64 {
        let size = i as usize * 600 * 1024;
        let p = t.alloc(size).unwrap();
        for &(s, e) in &ranges {
            assert!(
                p.offset() + size as u64 <= s || p.offset() >= e,
                "overlap: [{:#x}+{size}) vs [{s:#x},{e:#x})",
                p.offset()
            );
        }
        ranges.push((p.offset(), p.offset() + size as u64));
    }
    heap.check_invariants(t.core()).unwrap();
}

#[test]
fn address_space_is_reused_after_cleanup() {
    let (_pod, heap) = setup();
    let mut t = heap.register_thread().unwrap();
    let first = t.alloc(4 * MIB).unwrap();
    t.dealloc(first).unwrap();
    // Space returns only after a cleanup pass observes no hazards.
    let reclaimed = t.cleanup();
    assert_eq!(reclaimed, 1);
    let second = t.alloc(4 * MIB).unwrap();
    assert_eq!(first, second, "address space must be recycled");
    t.dealloc(second).unwrap();
    t.cleanup();
    heap.check_invariants(t.core()).unwrap();
}

#[test]
fn descriptor_slots_are_recycled() {
    let config = PodConfig {
        huge_descs_per_thread: 4,
        ..PodConfig::small_for_tests()
    };
    let pod = Pod::new(config).unwrap();
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    let mut t = heap.register_thread().unwrap();
    // Many more allocations than descriptor slots, with cleanup between.
    for _ in 0..20 {
        let p = t.alloc(MIB).unwrap();
        t.dealloc(p).unwrap();
        t.cleanup();
    }
    heap.check_invariants(t.core()).unwrap();
}

#[test]
fn descriptor_pool_exhaustion_reported() {
    let config = PodConfig {
        huge_descs_per_thread: 2,
        ..PodConfig::small_for_tests()
    };
    let pod = Pod::new(config).unwrap();
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    let mut t = heap.register_thread().unwrap();
    let _a = t.alloc(MIB).unwrap();
    let _b = t.alloc(MIB).unwrap();
    assert!(matches!(
        t.alloc(MIB),
        Err(AllocError::DescriptorPoolExhausted { .. })
    ));
}

#[test]
fn multi_region_allocation_spans_reservations() {
    // Test config: 64 MiB huge capacity in 32 regions of 2 MiB. An
    // 8 MiB allocation must claim 4 adjacent regions.
    let (pod, heap) = setup();
    let region = pod.layout().huge.region_size;
    let mut t = heap.register_thread().unwrap();
    let p = t.alloc(4 * region as usize).unwrap();
    let raw = t.resolve(p, 4 * region).unwrap();
    unsafe {
        // Touch every region of the span.
        for i in 0..4 {
            *raw.add((i * region) as usize) = i as u8 + 1;
        }
    }
    t.dealloc(p).unwrap();
    t.cleanup();
    heap.check_invariants(t.core()).unwrap();
}

#[test]
fn huge_oom_when_regions_exhausted() {
    let (pod, heap) = setup();
    let capacity = pod.layout().huge.data.len;
    let mut t = heap.register_thread().unwrap();
    assert!(matches!(
        t.alloc(capacity as usize + MIB),
        Err(AllocError::OutOfMemory { .. })
    ));
}

#[test]
fn cross_process_fault_installs_huge_mapping() {
    // PC-T for huge allocations: process B dereferences a pointer to a
    // mapping created in process A; the fault handler walks descriptor
    // lists, publishes a hazard, and installs the mapping.
    let (pod, _) = setup();
    let proc_a = pod.processes()[0].clone();
    let heap_a = Cxlalloc::attach(proc_a, AttachOptions::default()).unwrap();
    let proc_b = pod.spawn_process();
    let heap_b = Cxlalloc::attach(proc_b.clone(), AttachOptions::default()).unwrap();

    let mut a = heap_a.register_thread().unwrap();
    let mut b = heap_b.register_thread().unwrap();

    let p = a.alloc(2 * MIB).unwrap();
    unsafe { *a.resolve(p, 8).unwrap() = 42 };

    let faults_before = proc_b.fault_count();
    let raw = b.resolve(p, 8).unwrap();
    assert_eq!(unsafe { *raw }, 42);
    assert!(proc_b.fault_count() > faults_before, "B must have faulted");
    // B's fault published a hazard; A freeing does not reclaim until B's
    // hazard clears.
    b.dealloc(p).unwrap(); // B can even be the freer (remote free path)
    let mut a_reclaims = a.cleanup();
    // B still hazards the offset? No: B freed it, removing B's hazard.
    // A's hazard was removed at... A never faulted (own mapping), A's
    // hazard came from alloc. dealloc by B does not clear A's hazard, so
    // A's cleanup pass first drops its own stale mapping+hazard, then
    // reclaims.
    a_reclaims += a.cleanup();
    assert!(a_reclaims >= 1, "allocation must eventually be reclaimed");
    heap_a.check_invariants(a.core()).unwrap();
}

#[test]
fn hazard_prevents_premature_reclamation() {
    let (pod, _) = setup();
    let proc_a = pod.processes().first().cloned().unwrap_or_else(|| pod.spawn_process());
    let heap_a = Cxlalloc::attach(proc_a, AttachOptions::default()).unwrap();
    let proc_b = pod.spawn_process();
    let heap_b = Cxlalloc::attach(proc_b, AttachOptions::default()).unwrap();

    let mut a = heap_a.register_thread().unwrap();
    let b = heap_b.register_thread().unwrap();

    let p = a.alloc(MIB).unwrap();
    // B maps it via fault (publishing B's hazard).
    let _ = b.resolve(p, 8).unwrap();
    // A frees and cleans up: B's hazard must block reclamation.
    a.dealloc(p).unwrap();
    assert_eq!(a.cleanup(), 0, "B's hazard must block reclamation");
    // B exits its use: B's own cleanup drops its mapping and hazard.
    let mut b = b;
    b.cleanup();
    assert_eq!(a.cleanup(), 1, "now reclaimable");
}

#[test]
fn reconstruction_matches_live_state() {
    // Adoption rebuilds HugeLocal.free and the descriptor pool purely
    // from segment state; verify via drop-and-adopt of a live thread.
    let (_pod, heap) = setup();
    let mut t = heap.register_thread().unwrap();
    let keep = t.alloc(MIB).unwrap();
    let freed = t.alloc(2 * MIB).unwrap();
    t.dealloc(freed).unwrap();
    let tid = t.tid();
    let core = t.core();
    let free_before = t.huge_state().free.free_bytes();
    let slots_before = t.huge_state().desc_slots.len();
    drop(t);

    // Simulate crash + adoption (the thread was idle, so recovery is a
    // no-op and reconstruction must reproduce the volatile state).
    heap.mark_crashed(tid).unwrap();
    let (mut t2, report) = heap.adopt(tid, core).unwrap();
    assert_eq!(report.interrupted, None);
    assert_eq!(t2.huge_state().free.free_bytes(), free_before);
    // The freed-but-unreclaimed descriptor is still linked, so the pool
    // has the same number of free slots.
    assert_eq!(t2.huge_state().desc_slots.len(), slots_before);
    // The kept allocation is still usable; the freed one reclaims.
    unsafe { *t2.resolve(keep, 8).unwrap() = 9 };
    assert_eq!(t2.cleanup(), 1);
    t2.dealloc(keep).unwrap();
    heap.check_invariants(t2.core()).unwrap();
}
