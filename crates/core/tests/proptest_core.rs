//! Property-based tests (proptest) on the allocator and its core data
//! structures, checked against simple shadow models.

use cxl_core::interval::IntervalTree;
use cxl_core::{AttachOptions, Cxlalloc, OffsetPtr};
use cxl_pod::{MapSet, Pod, PodConfig};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};

// ---------------------------------------------------------------------------
// Allocator vs shadow model: random alloc/free sequences must produce
// disjoint, in-bounds, aligned blocks and support full drain.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc(usize),
    FreeOldest,
    FreeNewest,
}

fn alloc_op() -> impl Strategy<Value = AllocOp> {
    prop_oneof![
        3 => (1usize..=2048).prop_map(AllocOp::Alloc),
        1 => Just(AllocOp::FreeOldest),
        1 => Just(AllocOp::FreeNewest),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    #[test]
    fn allocator_blocks_never_overlap(ops in proptest::collection::vec(alloc_op(), 1..300)) {
        let pod = Pod::new(PodConfig {
            small_max_slabs: 256,
            ..PodConfig::small_for_tests()
        }).unwrap();
        let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
        let mut t = heap.register_thread().unwrap();
        let mut live: Vec<(OffsetPtr, usize)> = Vec::new();
        let mut shadow: HashMap<u64, usize> = HashMap::new();

        for op in ops {
            match op {
                AllocOp::Alloc(size) => {
                    let p = t.alloc(size).unwrap();
                    // In-bounds of some data region.
                    let layout = pod.layout();
                    prop_assert!(layout.is_data(p.offset()));
                    // Disjoint from every live block.
                    for (&o, &s) in &shadow {
                        prop_assert!(
                            p.offset() + size as u64 <= o || p.offset() >= o + s as u64,
                            "[{:#x}+{}) overlaps [{:#x}+{})", p.offset(), size, o, s
                        );
                    }
                    shadow.insert(p.offset(), size);
                    live.push((p, size));
                }
                AllocOp::FreeOldest if !live.is_empty() => {
                    let (p, _) = live.remove(0);
                    shadow.remove(&p.offset());
                    t.dealloc(p).unwrap();
                }
                AllocOp::FreeNewest if !live.is_empty() => {
                    let (p, _) = live.pop().unwrap();
                    shadow.remove(&p.offset());
                    t.dealloc(p).unwrap();
                }
                _ => {}
            }
        }
        for (p, _) in live {
            t.dealloc(p).unwrap();
        }
        prop_assert!(heap.check_invariants(t.core()).is_ok());
    }

    #[test]
    fn rover_and_scan_from_zero_allocate_equivalently(
        ops in proptest::collection::vec(alloc_op(), 1..300)
    ) {
        // Differential oracle for the first-fit rover: the same op
        // sequence driven against a rover-guided heap and a
        // scan-from-zero heap must agree on every observable outcome —
        // per-op success, map-oracle validity (disjoint in-bounds
        // blocks), live-byte totals, the per-class live multiset, and
        // the slab-level trajectory (the rover only reorders bits
        // *within* a slab; slab fill/empty events are unchanged).
        let mk = |rover: bool| {
            let pod = Pod::new(PodConfig {
                small_max_slabs: 256,
                ..PodConfig::small_for_tests()
            }).unwrap();
            let heap = Cxlalloc::attach(
                pod.spawn_process(),
                AttachOptions { rover, ..AttachOptions::default() },
            ).unwrap();
            (pod, heap)
        };
        let (pod_r, heap_r) = mk(true);
        let (_pod_z, heap_z) = mk(false);
        let mut tr = heap_r.register_thread().unwrap();
        let mut tz = heap_z.register_thread().unwrap();
        let mut live_r: Vec<(OffsetPtr, usize)> = Vec::new();
        let mut live_z: Vec<(OffsetPtr, usize)> = Vec::new();
        let mut shadow_r: HashMap<u64, usize> = HashMap::new();

        for op in ops {
            match op {
                AllocOp::Alloc(size) => {
                    let pr = tr.alloc(size);
                    let pz = tz.alloc(size);
                    prop_assert_eq!(pr.is_ok(), pz.is_ok(), "success diverged for size {}", size);
                    let (Ok(pr), Ok(pz)) = (pr, pz) else { continue };
                    // Map oracle on the rover heap: in some data
                    // region, disjoint from every live block.
                    prop_assert!(pod_r.layout().is_data(pr.offset()));
                    for (&o, &s) in &shadow_r {
                        prop_assert!(
                            pr.offset() + size as u64 <= o || pr.offset() >= o + s as u64,
                            "rover block [{:#x}+{}) overlaps [{:#x}+{})",
                            pr.offset(), size, o, s
                        );
                    }
                    shadow_r.insert(pr.offset(), size);
                    live_r.push((pr, size));
                    live_z.push((pz, size));
                }
                AllocOp::FreeOldest if !live_r.is_empty() => {
                    let (pr, _) = live_r.remove(0);
                    let (pz, _) = live_z.remove(0);
                    shadow_r.remove(&pr.offset());
                    prop_assert_eq!(tr.dealloc(pr).is_ok(), tz.dealloc(pz).is_ok());
                }
                AllocOp::FreeNewest if !live_r.is_empty() => {
                    let (pr, _) = live_r.pop().unwrap();
                    let (pz, _) = live_z.pop().unwrap();
                    shadow_r.remove(&pr.offset());
                    prop_assert_eq!(tr.dealloc(pr).is_ok(), tz.dealloc(pz).is_ok());
                }
                _ => {}
            }
        }
        // Identical live multisets (trivially same sizes — the real
        // content is that both heaps survived the same trajectory) and
        // identical slab-level state.
        let bytes = |l: &Vec<(OffsetPtr, usize)>| l.iter().map(|&(_, s)| s as u64).sum::<u64>();
        prop_assert_eq!(bytes(&live_r), bytes(&live_z));
        let slabs_r = heap_r.stats();
        let slabs_z = heap_z.stats();
        prop_assert_eq!(slabs_r.small_slabs, slabs_z.small_slabs, "small slab counts diverged");
        prop_assert_eq!(slabs_r.large_slabs, slabs_z.large_slabs, "large slab counts diverged");
        for (p, _) in live_r {
            tr.dealloc(p).unwrap();
        }
        for (p, _) in live_z {
            tz.dealloc(p).unwrap();
        }
        prop_assert!(heap_r.check_invariants(tr.core()).is_ok());
        prop_assert!(heap_z.check_invariants(tz.core()).is_ok());
    }

    #[test]
    fn size_class_serves_at_least_requested(size in 1usize..=(512 << 10)) {
        use cxl_core::class::{LARGE_CLASSES_TABLE, SMALL_CLASSES_TABLE};
        let table = if size <= 1024 { &SMALL_CLASSES_TABLE } else { &LARGE_CLASSES_TABLE };
        let class = table.class_of(size).unwrap();
        prop_assert!(table.block_size(class) as usize >= size);
        if class > 0 {
            prop_assert!((table.block_size(class - 1) as usize) < size);
        }
    }
}

// ---------------------------------------------------------------------------
// IntervalTree vs BTreeSet-of-bytes model.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Take(u64),
    InsertTaken(usize),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        2 => (1u64..=64).prop_map(TreeOp::Take),
        1 => (0usize..8).prop_map(TreeOp::InsertTaken),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128,
        ..ProptestConfig::default()
    })]

    #[test]
    fn interval_tree_matches_byte_model(ops in proptest::collection::vec(tree_op(), 1..200)) {
        const SPACE: u64 = 512;
        let mut tree = IntervalTree::new();
        tree.insert(0, SPACE);
        let mut model: BTreeSet<u64> = (0..SPACE).collect();
        let mut taken: Vec<(u64, u64)> = Vec::new();

        for op in ops {
            match op {
                TreeOp::Take(len) => {
                    match tree.take(len) {
                        Some(start) => {
                            for b in start..start + len {
                                prop_assert!(model.remove(&b), "byte {b} double-taken");
                            }
                            taken.push((start, len));
                        }
                        None => {
                            // No run of `len` contiguous free bytes may exist.
                            let mut run = 0u64;
                            let mut prev: Option<u64> = None;
                            let mut max_run = 0u64;
                            for &b in &model {
                                run = match prev {
                                    Some(p) if b == p + 1 => run + 1,
                                    _ => 1,
                                };
                                prev = Some(b);
                                max_run = max_run.max(run);
                            }
                            prop_assert!(max_run < len, "take({len}) failed with a {max_run}-byte run free");
                        }
                    }
                }
                TreeOp::InsertTaken(i) if !taken.is_empty() => {
                    let (start, len) = taken.swap_remove(i % taken.len());
                    tree.insert(start, len);
                    for b in start..start + len {
                        prop_assert!(model.insert(b));
                    }
                }
                _ => {}
            }
            prop_assert_eq!(tree.free_bytes(), model.len() as u64);
        }
    }

    #[test]
    fn mapset_matches_byte_model(
        ops in proptest::collection::vec(
            (0u64..256, 1u64..64, any::<bool>()), 1..100)
    ) {
        let mut set = MapSet::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for (start, len, insert) in ops {
            let end = start + len;
            if insert {
                set.insert(start, end);
                model.extend(start..end);
            } else {
                set.remove(start, end);
                for b in start..end {
                    model.remove(&b);
                }
            }
            prop_assert_eq!(set.covered_bytes(), model.len() as u64);
            // Spot-check membership at the edges.
            for probe in [start.saturating_sub(1), start, end - 1, end] {
                prop_assert_eq!(
                    set.contains(probe, 1),
                    model.contains(&probe),
                    "probe {}", probe
                );
            }
        }
    }

    #[test]
    fn detect_cell_roundtrips(version in any::<u16>(), tid in any::<u16>(), payload in any::<u32>()) {
        use cxl_core::cell::Detect;
        let d = Detect { version, tid, payload };
        prop_assert_eq!(Detect::unpack(d.pack()), d);
    }

    #[test]
    fn swcc_header_roundtrips(next in any::<u32>(), owner in any::<u16>(), class in any::<u8>(), flags in any::<u8>()) {
        use cxl_core::cell::SwccHeader;
        let h = SwccHeader { next, owner, class, flags };
        prop_assert_eq!(SwccHeader::unpack(h.pack()), h);
    }
}

// ---------------------------------------------------------------------------
// Fault plans and schedules: random schedules under randomly generated
// *benign* fault plans (virtual-clock delays and bounded transient mCAS
// contention) must still pass every invariant — faults may slow the
// pod down, never corrupt it.
// ---------------------------------------------------------------------------

mod faults {
    use super::*;
    use cxl_core::explore::Explorer;
    use cxl_core::sched::{FaultPlan, Schedule, SimConfig};
    use cxl_pod::fault::{FaultKind, FaultRule};
    use cxl_pod::HwccMode;

    /// A fault kind that cannot violate correctness: delays only move
    /// the virtual clock, and transient mCAS contention is retried by
    /// every caller.
    fn benign_kind() -> impl Strategy<Value = FaultKind> {
        prop_oneof![
            (1u64..=5_000).prop_map(FaultKind::DelayFlush),
            (1u64..=2_000).prop_map(FaultKind::DelayWriteback),
            (1u64..=5_000).prop_map(FaultKind::McasDelay),
            Just(FaultKind::McasContention),
        ]
    }

    /// A benign rule: any kind, optional core/range filter, bounded
    /// skip/count window. Contention stays bounded well below the
    /// allocator's retry budget so it is always transient.
    fn benign_rule() -> impl Strategy<Value = FaultRule> {
        (
            benign_kind(),
            prop_oneof![Just(None), (0usize..2).prop_map(Some)],
            0u64..8,
            1u64..16,
        )
            .prop_map(|(kind, core, skip, count)| {
                let mut rule = FaultRule::new(kind).after(skip).times(count);
                if let Some(core) = core {
                    rule = rule.on_core(core);
                }
                rule
            })
    }

    fn benign_plan() -> impl Strategy<Value = FaultPlan> {
        proptest::collection::vec(benign_rule(), 0..4).prop_map(FaultPlan::of)
    }

    /// A schedule drawn through the canonical generator, so failures
    /// reported here replay with `Explorer::run_seed(seed)`.
    fn schedule() -> impl Strategy<Value = Schedule> {
        (any::<u64>(), 5usize..25)
            .prop_map(|(seed, len)| Schedule::generate(seed, 2, len))
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 24,
            ..ProptestConfig::default()
        })]

        #[test]
        fn random_schedules_survive_benign_fault_plans(
            schedule in schedule(),
            plan in benign_plan(),
        ) {
            let explorer = Explorer {
                plan,
                ..Explorer::default()
            };
            let run = cxl_core::sched::run(&explorer.config, &schedule, &explorer.plan);
            prop_assert!(
                run.is_ok(),
                "seed {} failed: {:?} (plan {:?})",
                schedule.seed,
                run.err(),
                explorer.plan
            );
        }

        #[test]
        fn mcas_schedules_survive_device_faults(
            seed in any::<u64>(),
            delay in 1u64..10_000,
            contended in 1u64..12,
        ) {
            let config = SimConfig {
                mode: HwccMode::None,
                ..SimConfig::default()
            };
            let plan = FaultPlan::of(vec![
                FaultRule::new(FaultKind::McasDelay(delay)).times(16),
                FaultRule::new(FaultKind::McasContention).times(contended),
            ]);
            let schedule = Schedule::generate(seed, 2, 15);
            let run = cxl_core::sched::run(&config, &schedule, &plan);
            prop_assert!(run.is_ok(), "seed {seed} failed: {:?}", run.err());
        }

        #[test]
        fn schedule_generation_is_pure(seed in any::<u64>(), len in 1usize..60) {
            let a = Schedule::generate(seed, 3, len);
            let b = Schedule::generate(seed, 3, len);
            prop_assert_eq!(a, b);
        }
    }
}
