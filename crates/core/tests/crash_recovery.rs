//! Partial-failure tests (paper §3.4 and §5.1): white-box tests with
//! defined crash points, and black-box tests with random crashes.
//!
//! The harness crashes a victim thread at a named point inside the
//! allocator (the thread unwinds, leaving shared state exactly as a real
//! crash would — and in simulated-coherence pods, losing its dirty cache
//! lines), then recovers the thread and re-validates every heap
//! invariant. Live threads never block on the dead one.

use cxl_core::crash::{self, CrashPlan};
use cxl_core::{AttachOptions, Cxlalloc, OffsetPtr, ThreadId};
use cxl_pod::{CoreId, HwccMode, Pod, PodConfig};

const MIB: usize = 1 << 20;

fn pod(mode: Option<HwccMode>) -> Pod {
    let config = PodConfig {
        small_max_slabs: 256,
        ..PodConfig::small_for_tests()
    };
    match mode {
        None => Pod::new(config).unwrap(),
        Some(mode) => Pod::with_simulation(config, mode).unwrap(),
    }
}

/// Runs `victim` on a fresh thread with a crash plan armed; returns the
/// victim's tid after marking it crashed, plus whether the crash fired.
fn crash_thread(
    heap: &Cxlalloc,
    plan: CrashPlan,
    victim: impl FnOnce(&mut cxl_core::ThreadHandle) + Send,
) -> (ThreadId, bool) {
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut t = heap.register_thread().unwrap();
            let tid = t.tid();
            crash::arm(plan);
            let crashed = crash::catch(std::panic::AssertUnwindSafe(|| victim(&mut t))).is_err();
            crash::disarm();
            (tid, crashed)
        })
        .join()
        .unwrap()
    })
}

/// Exercises every slab-heap crash point with a workload that passes it,
/// recovering and validating after each.
#[test]
fn every_slab_crash_point_recovers() {
    for point in cxl_core::slab::CRASH_POINTS {
        for mode in [None, Some(HwccMode::Limited)] {
            let pod = pod(mode);
            // A tight unsized limit makes the workload overflow to (and
            // pop from) the global free list quickly.
            let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions {
                unsized_limit: 1,
                ..AttachOptions::default()
            })
            .unwrap();

            // A workload guaranteed to traverse all slab paths: local
            // churn, slab fills (detach), remote frees (disown + steal),
            // unsized overflow to the global list, pops from it.
            let (tid, crashed) = crash_thread(&heap, CrashPlan {
                at: point,
                skip: 0,
            }, |t| {
                let mut helper_ptrs = Vec::new();
                for round in 0..3 {
                    let ptrs: Vec<OffsetPtr> =
                        (0..1200).map(|_| t.alloc(64).unwrap()).collect();
                    for (i, p) in ptrs.into_iter().enumerate() {
                        if i % 7 == round {
                            helper_ptrs.push(p);
                        } else {
                            t.dealloc(p).unwrap();
                        }
                    }
                }
                for p in helper_ptrs {
                    t.dealloc(p).unwrap();
                }
                // Everything is free now: surplus slabs went to the
                // global list. Allocate a big batch to exercise unsized
                // pops and then global-list pops.
                let again: Vec<OffsetPtr> = (0..2400).map(|_| t.alloc(64).unwrap()).collect();
                for p in again {
                    t.dealloc(p).unwrap();
                }
                // A detectable alloc reaches the delivery crash point.
                let cell = t.alloc(8).unwrap();
                let p = t.alloc_detectable(64, cell).unwrap();
                t.dealloc(p).unwrap();
                t.dealloc(cell).unwrap();
            });

            // Remote-free points need a second thread; retry there below.
            if !crashed && point.starts_with("slab::remote_free") {
                continue;
            }
            assert!(
                crashed || point.starts_with("slab::remote_free"),
                "workload never reached {point}"
            );
            heap.mark_crashed(tid).unwrap();

            // A live thread keeps working while the victim is dead —
            // non-blocking crash (paper §3.4.1).
            let mut live = heap.register_thread().unwrap();
            for _ in 0..200 {
                let p = live.alloc(64).unwrap();
                live.dealloc(p).unwrap();
            }

            let report = heap.recover(tid, live.core()).unwrap();
            assert!(!report.outcome.is_empty());
            heap.check_invariants(live.core())
                .unwrap_or_else(|e| panic!("invariants after {point} ({mode:?}): {e}"));
        }
    }
}

#[test]
fn remote_free_crash_points_recover() {
    for point in [
        "slab::remote_free::after_log",
        "slab::remote_free::after_cas",
        "slab::remote_free::before_steal_push",
    ] {
        let pod = pod(Some(HwccMode::Limited));
        let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
        let mut producer = heap.register_thread().unwrap();
        let ptrs: Vec<OffsetPtr> = (0..512).map(|_| producer.alloc(64).unwrap()).collect();

        // The steal point fires exactly once per drained slab, the other
        // points fire per free: pick the skip accordingly.
        let skip = if point.ends_with("before_steal_push") { 0 } else { 100 };
        let (tid, crashed) = crash_thread(&heap, CrashPlan {
            at: point,
            skip,
        }, |t| {
            for p in &ptrs {
                t.dealloc(*p).unwrap();
            }
        });
        assert!(crashed, "never reached {point}");
        heap.mark_crashed(tid).unwrap();
        let report = heap.recover(tid, producer.core()).unwrap();
        assert!(report.interrupted.is_some());
        heap.check_invariants(producer.core())
            .unwrap_or_else(|e| panic!("invariants after {point}: {e}"));

        // The adopted thread (and the heap as a whole) remain fully
        // usable. (We do not re-free the remaining pointers: freeing a
        // block twice is an application bug, and which of the victim's
        // frees landed is exactly what the log + counter already
        // reconciled.)
        let (mut adopted, _) = heap.adopt(tid, producer.core()).unwrap();
        let fresh: Vec<OffsetPtr> = (0..256).map(|_| adopted.alloc(64).unwrap()).collect();
        for p in fresh {
            adopted.dealloc(p).unwrap();
        }
        heap.check_invariants(adopted.core()).unwrap();
    }
}

#[test]
fn steal_crash_point_recovers_slab() {
    // Crash exactly between the final decrement and the steal push: the
    // slab would be orphaned without recovery.
    let pod = pod(None);
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    let mut producer = heap.register_thread().unwrap();
    let ptrs: Vec<OffsetPtr> = (0..512).map(|_| producer.alloc(64).unwrap()).collect();

    let (tid, crashed) = crash_thread(&heap, CrashPlan {
        at: "slab::remote_free::before_steal_push",
        skip: 0,
    }, |t| {
        for p in &ptrs {
            t.dealloc(*p).unwrap();
        }
    });
    assert!(crashed);
    heap.mark_crashed(tid).unwrap();
    let slabs_before = heap.stats().small_slabs;
    let (mut adopted, report) = heap.adopt(tid, CoreId(5)).unwrap();
    assert!(report.outcome.contains("stolen") || report.outcome.contains("redone"),
        "unexpected outcome: {}", report.outcome);
    // The stolen slab is on the adopted thread's unsized list: new
    // allocations must not extend the heap.
    let p: Vec<OffsetPtr> = (0..512).map(|_| adopted.alloc(64).unwrap()).collect();
    assert_eq!(heap.stats().small_slabs, slabs_before);
    for ptr in p {
        adopted.dealloc(ptr).unwrap();
    }
    heap.check_invariants(adopted.core()).unwrap();
}

#[test]
fn interrupted_alloc_is_rolled_back_without_delivery() {
    // Detectable allocation: the app's destination cell never received
    // the pointer, so recovery rolls the block back — no leak.
    let pod = pod(None);
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    let mut owner = heap.register_thread().unwrap();
    let dst = owner.alloc(8).unwrap();

    let dst_copy = dst;
    let (tid, crashed) = crash_thread(&heap, CrashPlan {
        at: "slab::alloc_block::after_clear",
        skip: 0,
    }, move |t| {
        let _ = t.alloc_detectable(64, dst_copy);
        unreachable!("crash point must fire");
    });
    assert!(crashed);
    heap.mark_crashed(tid).unwrap();
    let report = heap.recover(tid, owner.core()).unwrap();
    assert_eq!(report.outcome, "allocation rolled back");
    assert_eq!(report.lost_block, None);
    heap.check_invariants(owner.core()).unwrap();
}

#[test]
fn interrupted_alloc_without_destination_is_reported() {
    let pod = pod(None);
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    let (tid, crashed) = crash_thread(&heap, CrashPlan {
        at: "slab::alloc_block::after_clear",
        skip: 0,
    }, |t| {
        let _ = t.alloc(64);
        unreachable!();
    });
    assert!(crashed);
    heap.mark_crashed(tid).unwrap();
    let report = heap.recover(tid, CoreId(3)).unwrap();
    assert_eq!(report.outcome, "allocation kept; reported as lost");
    let lost = report.lost_block.expect("lost block must be reported");
    // The harness can reclaim it through the adopted thread.
    let (mut adopted, _) = heap.adopt(tid, CoreId(3)).unwrap();
    adopted.dealloc(OffsetPtr::new(lost).unwrap()).unwrap();
    heap.check_invariants(adopted.core()).unwrap();
}

#[test]
fn every_huge_crash_point_recovers() {
    for point in cxl_core::huge::CRASH_POINTS {
        let pod = pod(None);
        let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
        let (tid, crashed) = crash_thread(&heap, CrashPlan {
            at: point,
            skip: 0,
        }, |t| {
            let a = t.alloc(MIB).unwrap();
            let b = t.alloc(2 * MIB).unwrap();
            t.dealloc(a).unwrap();
            t.cleanup();
            t.dealloc(b).unwrap();
            t.cleanup();
        });
        assert!(crashed, "workload never reached {point}");
        heap.mark_crashed(tid).unwrap();
        let (mut adopted, report) = heap.adopt(tid, CoreId(7)).unwrap();
        assert!(!report.outcome.is_empty());
        // The adopted thread's reconstructed state is fully usable:
        // allocate the entire huge capacity's worth over a few rounds.
        for _ in 0..3 {
            let p = adopted.alloc(4 * MIB).unwrap();
            adopted.dealloc(p).unwrap();
            adopted.cleanup();
        }
        heap.check_invariants(adopted.core())
            .unwrap_or_else(|e| panic!("invariants after {point}: {e}"));
    }
}

#[test]
fn random_blackbox_crashes() {
    // §5.1's black-box methodology: crash at a random operation count,
    // recover, validate, repeat — across coherence modes.
    for seed in 0..12u32 {
        let mode = match seed % 3 {
            0 => None,
            1 => Some(HwccMode::Limited),
            _ => Some(HwccMode::None),
        };
        let pod = pod(mode);
        let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
        // Use op-count-based crashes at the log point (reached by every
        // structural operation).
        let (tid, crashed) = crash_thread(&heap, CrashPlan {
            at: "slab::alloc_block::after_log",
            skip: 17 * seed + 3,
        }, |t| {
            let mut live = Vec::new();
            for op in 0..2000usize {
                live.push(t.alloc(8 + (op * 13) % 1000).unwrap());
                if live.len() > 40 {
                    let p = live.swap_remove(op % 40);
                    t.dealloc(p).unwrap();
                }
            }
            for p in live.drain(..) {
                t.dealloc(p).unwrap();
            }
        });
        assert!(crashed, "seed {seed} never crashed");
        heap.mark_crashed(tid).unwrap();
        let (mut adopted, _) = heap.adopt(tid, CoreId(9)).unwrap();
        for _ in 0..100 {
            let p = adopted.alloc(64).unwrap();
            adopted.dealloc(p).unwrap();
        }
        heap.check_invariants(adopted.core())
            .unwrap_or_else(|e| panic!("seed {seed} ({mode:?}): {e}"));
    }
}

#[test]
fn crash_point_matrix_via_schedule_driver() {
    // The full crash-point matrix: every label the allocator compiles
    // in (`crash::known_points`), at first and third encounter, driven
    // through the deterministic schedule driver. Each cell crashes the
    // victim host at the label mid-churn, keeps a second host working,
    // recovers the victim cross-host, and ends with a full
    // invariant-checked drain.
    use cxl_core::sched::{self, FaultPlan, Schedule, SimConfig, Step};

    let config = SimConfig::default();
    for (module, points) in crash::known_points() {
        for &at in points {
            for skip in [0u32, 2] {
                let schedule = Schedule {
                    seed: 0,
                    hosts: 2,
                    steps: vec![
                        Step::Alloc { host: 0, size: 64 },
                        Step::Crash { host: 1, at, skip },
                        // The survivor keeps allocating while host 1 is
                        // dead (non-blocking crash, paper §3.4.1).
                        Step::Alloc { host: 0, size: 256 },
                        Step::Alloc { host: 0, size: 4096 },
                        Step::Recover { host: 1, via: 0 },
                        Step::Alloc { host: 1, size: 64 },
                    ],
                };
                let report = sched::run(&config, &schedule, &FaultPlan::none())
                    .unwrap_or_else(|e| panic!("{module}::{at} skip {skip}: {e}"));
                // Whether the point fired depends on the label and skip
                // (some are only reached once per churn); either way the
                // run must validate. But the matrix as a whole must
                // actually crash: checked below over the accumulated
                // counts.
                assert_eq!(report.steps, 6, "{module}::{at}");
            }
        }
    }
}

#[test]
fn crash_point_matrix_fires_for_every_label_at_skip_zero() {
    // Companion to the matrix above: at skip 0 the churn workload must
    // actually reach every label (otherwise the matrix silently tests
    // nothing). Remote-free labels need a second thread's blocks and
    // are covered by `remote_free_crash_points_recover`.
    use cxl_core::sched::{self, FaultPlan, Schedule, SimConfig, Step};

    let config = SimConfig::default();
    for (module, points) in crash::known_points() {
        for &at in points {
            if at.starts_with("slab::remote_free") {
                continue;
            }
            let schedule = Schedule {
                seed: 0,
                hosts: 2,
                steps: vec![Step::Crash { host: 0, at, skip: 0 }, Step::Recover {
                    host: 0,
                    via: 1,
                }],
            };
            let report = sched::run(&config, &schedule, &FaultPlan::none())
                .unwrap_or_else(|e| panic!("{module}::{at}: {e}"));
            assert_eq!(
                report.crashes_fired, 1,
                "churn never reached {module}::{at}"
            );
            assert_eq!(report.recoveries, 1, "{module}::{at}");
        }
    }
}

#[test]
fn recovery_requires_crashed_state() {
    let pod = pod(None);
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    let t = heap.register_thread().unwrap();
    // Recovering a live thread is rejected.
    assert!(heap.recover(t.tid(), CoreId(0)).is_err());
    // Marking a never-registered slot crashed is rejected.
    assert!(heap.mark_crashed(ThreadId::new(9).unwrap()).is_err());
}

#[test]
fn double_recovery_is_idempotent() {
    let pod = pod(None);
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    let (tid, crashed) = crash_thread(&heap, CrashPlan {
        at: "slab::free_local::after_set",
        skip: 5,
    }, |t| {
        let ptrs: Vec<_> = (0..100).map(|_| t.alloc(64).unwrap()).collect();
        for p in ptrs {
            t.dealloc(p).unwrap();
        }
    });
    assert!(crashed);
    heap.mark_crashed(tid).unwrap();
    let r1 = heap.recover(tid, CoreId(2)).unwrap();
    // Recovery itself can crash; re-running must be safe.
    let r2 = heap.recover(tid, CoreId(2)).unwrap();
    assert!(r1.interrupted.is_some());
    assert_eq!(r2.interrupted, None, "second pass sees a clean log");
    heap.check_invariants(CoreId(2)).unwrap();
}

#[test]
fn large_heap_crash_points_recover() {
    // The large heap shares the slab machinery; make sure its ops are
    // logged with the Large tag and recover correctly too.
    for point in [
        "slab::alloc_block::after_clear",
        "slab::free_local::after_set",
        "slab::extend::after_cas",
    ] {
        let pod = pod(None);
        let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
        let skip = if point.contains("extend") { 1 } else { 3 };
        let (tid, crashed) = crash_thread(&heap, CrashPlan {
            at: point,
            skip,
        }, |t| {
            let mut live = Vec::new();
            for i in 0..64 {
                live.push(t.alloc(4096 + (i % 4) * 1024).unwrap());
                if live.len() > 8 {
                    t.dealloc(live.remove(0)).unwrap();
                }
            }
            for p in live {
                t.dealloc(p).unwrap();
            }
        });
        assert!(crashed, "never reached {point} in the large heap");
        heap.mark_crashed(tid).unwrap();
        let (mut adopted, report) = heap.adopt(tid, CoreId(4)).unwrap();
        if let Some((_, kind)) = report.interrupted {
            assert_eq!(kind, cxl_core::HeapKind::Large, "{point}");
        }
        let p = adopted.alloc(8192).unwrap();
        adopted.dealloc(p).unwrap();
        heap.check_invariants(adopted.core())
            .unwrap_or_else(|e| panic!("invariants after {point}: {e}"));
    }
}

#[test]
fn every_slab_crash_point_recovers_with_writeback_shadow() {
    // The owner-shadow matrix (DESIGN.md §8): under a write-back shadow
    // (`HwccMode::None` — descriptor stores are deferred in the owner's
    // DRAM shadow), an armed crash point first drains the shadow into
    // the victim's simulated cache, which the crash then discards. The
    // durable SWcc image recovery reads must therefore be exactly what
    // an unshadowed crash at the same point would have left. Every slab
    // label is crashed mid-churn and the heap revalidated after
    // cross-core recovery.
    for point in cxl_core::slab::CRASH_POINTS {
        let pod = pod(Some(HwccMode::None));
        let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions {
            unsized_limit: 1,
            ..AttachOptions::default()
        })
        .unwrap();

        // Same all-paths workload as `every_slab_crash_point_recovers`:
        // local churn, slab fills, unsized overflow to the global list,
        // pops back from it.
        let (tid, crashed) = crash_thread(&heap, CrashPlan { at: point, skip: 0 }, |t| {
            let mut helper_ptrs = Vec::new();
            for round in 0..3 {
                let ptrs: Vec<OffsetPtr> = (0..1200).map(|_| t.alloc(64).unwrap()).collect();
                for (i, p) in ptrs.into_iter().enumerate() {
                    if i % 7 == round {
                        helper_ptrs.push(p);
                    } else {
                        t.dealloc(p).unwrap();
                    }
                }
            }
            for p in helper_ptrs {
                t.dealloc(p).unwrap();
            }
            let again: Vec<OffsetPtr> = (0..2400).map(|_| t.alloc(64).unwrap()).collect();
            for p in again {
                t.dealloc(p).unwrap();
            }
            // A detectable alloc reaches the delivery crash point.
            let cell = t.alloc(8).unwrap();
            let p = t.alloc_detectable(64, cell).unwrap();
            t.dealloc(p).unwrap();
            t.dealloc(cell).unwrap();
        });

        // Remote-free points need a second thread and are covered by
        // `remote_free_crash_points_recover`.
        if !crashed && point.starts_with("slab::remote_free") {
            continue;
        }
        assert!(crashed, "workload never reached {point} under HwccMode::None");
        heap.mark_crashed(tid).unwrap();

        let mut live = heap.register_thread().unwrap();
        for _ in 0..100 {
            let p = live.alloc(64).unwrap();
            live.dealloc(p).unwrap();
        }

        let report = heap.recover(tid, live.core()).unwrap();
        assert!(!report.outcome.is_empty());
        heap.check_invariants(live.core())
            .unwrap_or_else(|e| panic!("invariants after {point} (shadowed write-back): {e}"));
    }
}

#[test]
fn crash_point_matrix_replays_under_writeback_shadow() {
    // Schedule-driver companion: the same crash-point matrix as
    // `crash_point_matrix_via_schedule_driver`, but on an mCAS pod
    // (`HwccMode::None`) where the shadow runs write-back. Each cell
    // must replay deterministically: two runs of the same
    // (config, schedule) produce identical fingerprints even though the
    // crash interleaves with deferred shadow stores.
    use cxl_core::sched::{self, FaultPlan, Schedule, SimConfig, Step};

    let config = SimConfig {
        mode: HwccMode::None,
        ..SimConfig::default()
    };
    for (module, points) in crash::known_points() {
        for &at in points {
            let schedule = Schedule {
                seed: 0,
                hosts: 2,
                steps: vec![
                    Step::Alloc { host: 0, size: 64 },
                    Step::Crash { host: 1, at, skip: 0 },
                    Step::Alloc { host: 0, size: 256 },
                    Step::Recover { host: 1, via: 0 },
                    Step::Alloc { host: 1, size: 64 },
                ],
            };
            let a = sched::run(&config, &schedule, &FaultPlan::none())
                .unwrap_or_else(|e| panic!("{module}::{at}: {e}"));
            let b = sched::run(&config, &schedule, &FaultPlan::none())
                .unwrap_or_else(|e| panic!("{module}::{at} (replay): {e}"));
            assert_eq!(
                a.fingerprint, b.fingerprint,
                "{module}::{at}: replay diverged under the write-back shadow"
            );
            assert_eq!(a.steps, 5, "{module}::{at}");
        }
    }
}
