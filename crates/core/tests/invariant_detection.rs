//! The §5.1 invariant checker must actually *detect* corruption — these
//! tests sabotage heap metadata directly and assert the checker reports
//! each class of violation.

use cxl_core::cell::{flags, Detect, SwccHeader};
use cxl_core::{AttachOptions, Cxlalloc};
use cxl_pod::{CoreId, Pod, PodConfig};

fn setup() -> (Pod, Cxlalloc, cxl_core::ThreadHandle) {
    let pod = Pod::new(PodConfig::small_for_tests()).unwrap();
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    let mut t = heap.register_thread().unwrap();
    // Materialize a slab and keep it on the sized list (one live block
    // keeps it non-empty, one freed block keeps it non-full).
    let keep = t.alloc(64).unwrap();
    let free = t.alloc(64).unwrap();
    t.dealloc(free).unwrap();
    let _ = keep;
    (pod, heap, t)
}

#[test]
fn clean_heap_passes() {
    let (_pod, heap, t) = setup();
    heap.check_invariants(t.core()).unwrap();
}

#[test]
fn detects_owned_slab_on_global_list() {
    let (pod, heap, t) = setup();
    let layout = pod.layout();
    // Fake a global list entry pointing at slab 0 while slab 0 still has
    // an owner.
    pod.memory().store_u64(
        CoreId(0),
        layout.small.global_free,
        Detect {
            version: 1,
            tid: 1,
            payload: 1, // slab 0 + 1
        }
        .pack(),
    );
    let err = heap.check_invariants(t.core()).unwrap_err();
    assert!(err.contains("global stripe"), "{err}");
}

#[test]
fn detects_full_slab_on_sized_list() {
    let (pod, heap, t) = setup();
    let layout = pod.layout();
    // Slab 0 is on thread 1's sized list; zero its free count.
    pod.memory()
        .store_u64(CoreId(0), layout.small.free_count_at(0), 0);
    let err = heap.check_invariants(t.core()).unwrap_err();
    assert!(
        err.contains("full slab") || err.contains("population"),
        "{err}"
    );
}

#[test]
fn detects_free_count_bitset_mismatch() {
    let (pod, heap, t) = setup();
    let layout = pod.layout();
    // Corrupt the free count (bitset unchanged).
    let real = pod
        .memory()
        .load_u64(CoreId(0), layout.small.free_count_at(0));
    pod.memory()
        .store_u64(CoreId(0), layout.small.free_count_at(0), real - 1);
    let err = heap.check_invariants(t.core()).unwrap_err();
    assert!(err.contains("population"), "{err}");
}

#[test]
fn detects_sized_list_cycle() {
    let (pod, heap, t) = setup();
    let layout = pod.layout();
    // Slab 0 heads thread 1's sized list; make it point at itself.
    let header_off = layout.small.swcc_desc_at(0);
    let mut header = SwccHeader::unpack(pod.memory().load_u64(CoreId(0), header_off));
    header.next = 1; // slab 0 again (self loop)
    pod.memory().store_u64(CoreId(0), header_off, header.pack());
    let err = heap.check_invariants(t.core()).unwrap_err();
    assert!(err.contains("cycle") || err.contains("cycles"), "{err}");
}

#[test]
fn detects_wrong_class_on_sized_list() {
    let (pod, heap, t) = setup();
    let layout = pod.layout();
    let header_off = layout.small.swcc_desc_at(0);
    let mut header = SwccHeader::unpack(pod.memory().load_u64(CoreId(0), header_off));
    assert_eq!(header.flags & flags::SIZED, flags::SIZED);
    header.class = header.class.wrapping_add(1);
    pod.memory().store_u64(CoreId(0), header_off, header.pack());
    let err = heap.check_invariants(t.core()).unwrap_err();
    assert!(err.contains("class"), "{err}");
}

#[test]
fn detects_bogus_huge_descriptor() {
    let (pod, heap, mut t) = setup();
    let layout = pod.layout();
    let big = t.alloc(2 << 20).unwrap();
    // Find the descriptor through the list head and corrupt its size.
    let head = pod
        .memory()
        .load_u64(CoreId(0), layout.huge.local_descs_at(t.tid().slot()));
    assert_ne!(head, 0);
    pod.memory()
        .store_u64(CoreId(0), head + 16, layout.huge.data.len * 2);
    let err = heap.check_invariants(t.core()).unwrap_err();
    assert!(err.contains("huge"), "{err}");
    let _ = big;
}

#[test]
fn detects_bogus_reservation_owner() {
    let (pod, heap, t) = setup();
    let layout = pod.layout();
    pod.memory().store_u64(
        CoreId(0),
        layout.huge.reservation_at(3),
        Detect {
            version: 0,
            tid: 0,
            payload: 60_000, // far beyond max_threads
        }
        .pack(),
    );
    let err = heap.check_invariants(t.core()).unwrap_err();
    assert!(err.contains("region"), "{err}");
}
