//! Behavioral tests of the slab heaps: the Figure 4 state machine, the
//! remote-free protocol, the global free list, and multi-threaded
//! stress with invariant checks (paper §5.1).

use cxl_core::{AllocError, AttachOptions, Cxlalloc, OffsetPtr};
use cxl_pod::{CoreId, Pod, PodConfig};
use std::collections::HashSet;

fn setup() -> (Pod, Cxlalloc) {
    let pod = Pod::new(PodConfig::small_for_tests()).unwrap();
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    (pod, heap)
}

#[test]
fn blocks_within_a_slab_are_disjoint() {
    let (pod, heap) = setup();
    let mut t = heap.register_thread().unwrap();
    let mut seen = HashSet::new();
    let mut ptrs = Vec::new();
    for _ in 0..1000 {
        let p = t.alloc(48).unwrap();
        assert!(seen.insert(p.offset()), "duplicate allocation at {p}");
        assert!(pod.layout().small.data.contains(p.offset()));
        // 48-byte class: blocks are 48-byte aligned within the slab.
        let within = (p.offset() - pod.layout().small.data.start) % 32768;
        assert_eq!(within % 48, 0);
        ptrs.push(p);
    }
    for p in ptrs {
        t.dealloc(p).unwrap();
    }
    heap.check_invariants(t.core()).unwrap();
}

#[test]
fn freed_blocks_are_reused() {
    // The first-fit rover (default) pulls back to the freed bit on a
    // local free, so the classic lowest-bit reuse behavior survives:
    // the freed block comes right back.
    let (_pod, heap) = setup();
    let mut t = heap.register_thread().unwrap();
    let a = t.alloc(64).unwrap();
    t.dealloc(a).unwrap();
    let b = t.alloc(64).unwrap();
    assert_eq!(a, b, "freed block must be handed right back");
}

#[test]
fn freed_blocks_are_reused_exactly_without_rover() {
    // The scan-from-zero ablation (`rover: false`) preserves the
    // classic lowest-bit-first policy: the freed block comes right back.
    let pod = Pod::new(PodConfig::small_for_tests()).unwrap();
    let heap = Cxlalloc::attach(
        pod.spawn_process(),
        AttachOptions {
            rover: false,
            ..AttachOptions::default()
        },
    )
    .unwrap();
    let mut t = heap.register_thread().unwrap();
    let a = t.alloc(64).unwrap();
    t.dealloc(a).unwrap();
    let b = t.alloc(64).unwrap();
    assert_eq!(a, b, "scan-from-zero should hand the block right back");
}

#[test]
fn stale_or_ahead_rover_hints_are_revalidated() {
    // The rover is an advisory start position, never trusted: the scan
    // revalidates every word against the durable bitset and wraps to
    // zero. Clobber it with every flavor of wrong value — pointing at
    // allocated blocks, at the end of the bitmap, past the end, and at
    // absurd magnitudes — and allocation must still hand out a block
    // that is genuinely free.
    let (_pod, heap) = setup();
    let mut t = heap.register_thread().unwrap();
    // Fill the low 64 bits of the first slab's 512-block bitmap, so
    // "allocated territory" (bits 0..64) and "free territory" both exist.
    let mut live: Vec<OffsetPtr> = (0..64).map(|_| t.alloc(64).unwrap()).collect();
    let seen: HashSet<u64> = live.iter().map(|p| p.offset()).collect();
    for bogus in [3u32, 63, 500, 511, 512, 513, 4096, u32::MAX] {
        t.debug_set_rover(live[0], bogus);
        let p = t.alloc(64).unwrap();
        assert!(
            !seen.contains(&p.offset()),
            "rover hint {bogus} handed out a live block at {p}"
        );
        t.dealloc(p).unwrap();
    }
    // A hint above a free-but-behind block must still find it: fill the
    // slab completely, open one low hole, point the rover at the top,
    // and expect the wrap pass to land on the hole.
    let refill: Vec<OffsetPtr> = (0..448).map(|_| t.alloc(64).unwrap()).collect();
    let low = live.remove(0);
    t.dealloc(low).unwrap();
    t.debug_set_rover(live[0], 511);
    let back = t.alloc(64).unwrap();
    assert_eq!(back, low, "wrap pass must reach the freed-behind block");
    for p in live.into_iter().chain(refill).chain([back]) {
        t.dealloc(p).unwrap();
    }
    heap.check_invariants(t.core()).unwrap();
}

#[test]
fn heap_extends_monotonically() {
    let (_pod, heap) = setup();
    let mut t = heap.register_thread().unwrap();
    let before = heap.stats().small_slabs;
    // A 32 KiB slab holds 32768/64 = 512 blocks of the 64-byte class;
    // allocate three slabs' worth.
    let ptrs: Vec<_> = (0..1536).map(|_| t.alloc(64).unwrap()).collect();
    let after = heap.stats().small_slabs;
    assert!(after >= before + 3, "expected ≥3 slab extensions, got {before}→{after}");
    for p in ptrs {
        t.dealloc(p).unwrap();
    }
    // Extension is monotonic: frees never shrink the heap.
    assert_eq!(heap.stats().small_slabs, after);
    heap.check_invariants(t.core()).unwrap();
}

#[test]
fn empty_slabs_overflow_to_global_list_and_are_reused() {
    let (_pod, heap) = setup();
    let mut a = heap.register_thread().unwrap();
    // Fill and free many slabs so `a`'s unsized list overflows to the
    // global free list. Nine slabs' worth: empty-slab hysteresis keeps
    // one emptied slab sized on `a`, the unsized list caps at
    // `unsized_limit` (4), and the remaining four overflow globally.
    let ptrs: Vec<_> = (0..4608).map(|_| a.alloc(64).unwrap()).collect();
    let peak = heap.stats().small_slabs;
    for p in ptrs {
        a.dealloc(p).unwrap();
    }
    heap.check_invariants(a.core()).unwrap();
    // ...then a different thread allocates: it must reuse global slabs,
    // not extend the heap.
    let mut b = heap.register_thread().unwrap();
    let ptrs: Vec<_> = (0..2048).map(|_| b.alloc(64).unwrap()).collect();
    assert_eq!(heap.stats().small_slabs, peak, "no new slabs should be needed");
    for p in ptrs {
        b.dealloc(p).unwrap();
    }
    heap.check_invariants(b.core()).unwrap();
}

#[test]
fn producer_consumer_slabs_are_stolen() {
    // Paper §3.2.1: a slab entirely remotely freed (producer/consumer)
    // is stolen by the freeing thread without coordinating with the
    // producer.
    let (_pod, heap) = setup();
    let mut producer = heap.register_thread().unwrap();
    let mut consumer = heap.register_thread().unwrap();
    // Exactly one 512-block slab of the 64-byte class.
    let ptrs: Vec<_> = (0..512).map(|_| producer.alloc(64).unwrap()).collect();
    let slabs_before = heap.stats().small_slabs;
    for p in ptrs {
        consumer.dealloc(p).unwrap(); // remote frees
    }
    heap.check_invariants(consumer.core()).unwrap();
    // The consumer now owns the stolen slab: its next allocations of any
    // class must come from it without extending the heap.
    let ptrs: Vec<_> = (0..512).map(|_| consumer.alloc(64).unwrap()).collect();
    assert_eq!(heap.stats().small_slabs, slabs_before, "stolen slab must be reused");
    for p in ptrs {
        consumer.dealloc(p).unwrap();
    }
}

#[test]
fn mixed_local_remote_frees_reclaim_via_disown() {
    // Paper §3.2.1: a slab with at least one remote free is *disowned*
    // when it fills, forcing all later frees through the remote path so
    // the whole slab eventually drains.
    let (_pod, heap) = setup();
    let mut owner = heap.register_thread().unwrap();
    let mut other = heap.register_thread().unwrap();

    // Fill one 64-byte slab.
    let mut ptrs: Vec<_> = (0..512).map(|_| owner.alloc(64).unwrap()).collect();
    // Remote-free one block, then locally free another: slab now has a
    // mix and is non-full (so it is on the owner's sized list).
    other.dealloc(ptrs.pop().unwrap()).unwrap();
    owner.dealloc(ptrs.pop().unwrap()).unwrap();
    // Refill: the slab becomes full again and must be DISOWNED (remote
    // counter < total). The owner's local free of a disowned slab takes
    // the remote path.
    ptrs.push(owner.alloc(64).unwrap());
    ptrs.push(owner.alloc(64).unwrap());
    // Drain everything through both threads; the final free steals.
    for (i, p) in ptrs.into_iter().enumerate() {
        if i % 2 == 0 {
            owner.dealloc(p).unwrap();
        } else {
            other.dealloc(p).unwrap();
        }
    }
    heap.check_invariants(owner.core()).unwrap();
}

#[test]
fn remote_free_to_drained_slab_is_rejected() {
    let (_pod, heap) = setup();
    let mut producer = heap.register_thread().unwrap();
    let mut consumer = heap.register_thread().unwrap();
    let ptrs: Vec<_> = (0..512).map(|_| producer.alloc(64).unwrap()).collect();
    let last = ptrs[0];
    for p in &ptrs {
        consumer.dealloc(*p).unwrap();
    }
    // Freeing again into the fully-drained slab is an application bug.
    // The consumer stole the slab, so the *producer*'s double free takes
    // the remote path and the zeroed counter rejects it. (The stealer
    // itself owns the slab now, so its double frees are as undetectable
    // as any local double free into a recycled slab.)
    assert!(matches!(
        producer.dealloc(last),
        Err(AllocError::NotAllocated { .. })
    ));
}

#[test]
fn interior_pointer_rejected() {
    let (_pod, heap) = setup();
    let mut t = heap.register_thread().unwrap();
    let p = t.alloc(64).unwrap();
    let interior = OffsetPtr::new(p.offset() + 8).unwrap();
    assert!(matches!(
        t.dealloc(interior),
        Err(AllocError::NotAllocated { .. })
    ));
    t.dealloc(p).unwrap();
}

#[test]
fn large_heap_works_like_small() {
    let (pod, heap) = setup();
    let mut t = heap.register_thread().unwrap();
    let mut ptrs = Vec::new();
    for size in [1025usize, 4096, 100_000, 512 << 10] {
        let p = t.alloc(size).unwrap();
        assert!(pod.layout().large.data.contains(p.offset()), "size {size}");
        ptrs.push(p);
    }
    for p in ptrs {
        t.dealloc(p).unwrap();
    }
    heap.check_invariants(t.core()).unwrap();
    assert!(heap.stats().large_slabs >= 1);
}

#[test]
fn small_heap_oom_is_reported() {
    let config = PodConfig {
        small_max_slabs: 2,
        ..PodConfig::small_for_tests()
    };
    let pod = Pod::new(config).unwrap();
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    let mut t = heap.register_thread().unwrap();
    let mut ptrs = Vec::new();
    let err = loop {
        match t.alloc(1024) {
            Ok(p) => ptrs.push(p),
            Err(e) => break e,
        }
        assert!(ptrs.len() <= 64, "2 slabs of 1 KiB blocks hold exactly 64");
    };
    assert!(matches!(err, AllocError::OutOfMemory { .. }));
    assert_eq!(ptrs.len(), 64);
    // Freeing restores allocatability.
    for p in ptrs {
        t.dealloc(p).unwrap();
    }
    assert!(t.alloc(1024).is_ok());
}

#[test]
fn hwcc_usage_matches_paper_accounting() {
    let (_pod, heap) = setup();
    let mut t = heap.register_thread().unwrap();
    let ptrs: Vec<_> = (0..1000).map(|_| t.alloc(128).unwrap()).collect();
    let stats = heap.stats();
    // HWcc: 16 B per heap global + 8 B per slab + 8 KiB-equivalent huge
    // reservations. Tiny compared to mapped data.
    assert!(stats.hwcc_bytes < 16 * 1024);
    assert!(stats.small_bytes >= 1000 * 128 / 2);
    assert!(
        stats.hwcc_bytes * 10 < stats.small_bytes,
        "HWcc ({}) must be a small fraction of data ({})",
        stats.hwcc_bytes,
        stats.small_bytes
    );
    for p in ptrs {
        t.dealloc(p).unwrap();
    }
}

#[test]
fn multithreaded_stress_with_remote_frees() {
    use std::sync::mpsc;
    let config = PodConfig {
        small_max_slabs: 512,
        ..PodConfig::small_for_tests()
    };
    let pod = Pod::new(config).unwrap();
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();

    const THREADS: usize = 4;
    const OPS: usize = 3000;
    // Ring of channels: each thread frees blocks allocated by its
    // neighbour (all remote frees) plus churns locally.
    let (senders, receivers): (Vec<_>, Vec<_>) =
        (0..THREADS).map(|_| mpsc::channel::<OffsetPtr>()).unzip();
    let mut senders = senders.into_iter().map(Some).collect::<Vec<_>>();

    std::thread::scope(|s| {
        let mut receivers = receivers.into_iter();
        for i in 0..THREADS {
            let heap = heap.clone();
            let to_next = senders[(i + 1) % THREADS].take().unwrap();
            let from_prev = receivers.next().unwrap();
            s.spawn(move || {
                let mut t = heap.register_thread().unwrap();
                let mut local = Vec::new();
                for op in 0..OPS {
                    let size = 8 + (op * 13) % 1017;
                    let p = t.alloc(size).unwrap();
                    if op % 3 == 0 {
                        // Hand to the neighbour for a remote free.
                        if to_next.send(p).is_err() {
                            t.dealloc(p).unwrap();
                        }
                    } else {
                        local.push(p);
                    }
                    if op % 5 == 0 {
                        while let Ok(remote) = from_prev.try_recv() {
                            t.dealloc(remote).unwrap();
                        }
                    }
                    if local.len() > 64 {
                        t.dealloc(local.swap_remove(op % 64)).unwrap();
                    }
                }
                drop(to_next);
                for p in local {
                    t.dealloc(p).unwrap();
                }
                while let Ok(remote) = from_prev.recv() {
                    t.dealloc(remote).unwrap();
                }
            });
        }
    });
    heap.check_invariants(CoreId(0)).unwrap();
}

#[test]
fn detectable_allocation_stores_destination() {
    // alloc_detectable is the hook recoverable data structures use; in
    // normal (non-crash) operation it behaves exactly like alloc.
    let (_pod, heap) = setup();
    let mut t = heap.register_thread().unwrap();
    let cell = t.alloc(8).unwrap(); // an app-side 8-byte cell
    let p = t.alloc_detectable(100, cell).unwrap();
    // Simulate the app's publish: store the pointer into the cell.
    unsafe {
        (t.resolve(cell, 8).unwrap() as *mut u64).write(p.offset());
    }
    t.dealloc(p).unwrap();
    t.dealloc(cell).unwrap();
    heap.check_invariants(t.core()).unwrap();
}
