//! PR 8 acceptance tests: the striped global free list and the
//! flat-combining remote-free publication path.
//!
//! * Crash matrix over the per-stripe `pop_global` / `push_global`
//!   points with `global_stripes: 8`: the stripe index travels in the
//!   oplog record, so recovery re-targets exactly the interrupted
//!   stripe's head cell.
//! * Steal-during-crash: a thread that dies mid-pop of a *foreign*
//!   stripe's slab leaves a heap the survivor can recover, and the
//!   orphaned slab is adopted rather than leaked.
//! * Differential proptest: the same op sequence on a stripes=1 and a
//!   stripes=8 pod yields censuses that both match the tracked live
//!   set exactly (the unsharded heap is the oracle).
//! * Crash matrix over every [`cxl_core::comb::COMB_CRASH_POINTS`]
//!   label: a combined publish of k frees is crash-equivalent to k
//!   delayed eager frees — the counter lands on exactly `blocks - k`
//!   no matter where the combiner dies, and the request word is
//!   released.
//! * Combining semantics: a winner merges a foreign POSTED batch into
//!   one decrement and DONE-marks the contributor; a word stuck in a
//!   stalled winner's custody forces the direct path without touching
//!   the word; a stale DONE word is released on the next publish.
//! * Recovery resolves a dead thread's combiner state: its own POSTED
//!   batch is taken back and republished, and claims it held on other
//!   threads' words are published and DONE-marked.

use cxl_core::crash::{self, CrashPlan};
use cxl_core::{comb, AttachOptions, Cxlalloc, HeapKind, OffsetPtr, ThreadId};
use cxl_pod::{CoreId, HwccMode, Pod, PodConfig};
use proptest::prelude::*;

const STRIPES: u32 = 8;

fn striped_pod(stripes: u32) -> Pod {
    Pod::with_simulation(
        PodConfig {
            small_max_slabs: 256,
            global_stripes: stripes,
            ..PodConfig::small_for_tests()
        },
        HwccMode::Limited,
    )
    .unwrap()
}

/// Attach options that overflow every emptied slab to the global list
/// immediately, so the stripes see churn from short sequences.
fn overflow_options() -> AttachOptions {
    AttachOptions {
        unsized_limit: 0,
        ..AttachOptions::default()
    }
}

/// Attach options with flat combining permitted over a 4-wide batch.
fn combining_options() -> AttachOptions {
    AttachOptions {
        remote_free_batch: 4,
        coalesce_fences: true,
        combining: true,
        ..AttachOptions::default()
    }
}

/// Runs `victim` on a fresh thread with a crash plan armed; returns the
/// victim's tid plus whether the crash fired.
fn crash_thread(
    heap: &Cxlalloc,
    plan: CrashPlan,
    victim: impl FnOnce(&mut cxl_core::ThreadHandle) + Send,
) -> (ThreadId, bool) {
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut t = heap.register_thread().unwrap();
            let tid = t.tid();
            crash::arm(plan);
            let crashed = crash::catch(std::panic::AssertUnwindSafe(|| victim(&mut t))).is_err();
            crash::disarm();
            (tid, crashed)
        })
        .join()
        .unwrap()
    })
}

/// Reads a small-heap slab's HWcc remote counter from durable memory.
fn remote_counter(pod: &Pod, slab: u32) -> u32 {
    let mem = pod.memory().as_ref();
    cxl_core::cell::Detect::unpack(mem.load_u64(CoreId(13), mem.layout().small.hwcc_desc_at(slab)))
        .payload
}

/// Whether global free-list stripe `stripe` (small heap) holds a slab.
fn stripe_nonempty(pod: &Pod, stripe: u32) -> bool {
    let mem = pod.memory().as_ref();
    cxl_core::cell::Detect::unpack(
        mem.load_u64(CoreId(13), mem.layout().small.global_free_at(stripe)),
    )
    .payload
        != 0
}

/// Fills the producer's home stripe with `slabs` empty slabs (each slab
/// is 512 blocks of 64 bytes with the test config).
fn fill_home_stripe(producer: &mut cxl_core::ThreadHandle, slabs: usize) {
    let ptrs: Vec<OffsetPtr> = (0..slabs * 512).map(|_| producer.alloc(64).unwrap()).collect();
    for p in ptrs {
        producer.dealloc(p).unwrap();
    }
}

/// Emptied slabs land on the owner's home stripe and nowhere else, and
/// a thread with a different home stripe steals them instead of
/// extending the heap.
#[test]
fn empties_land_on_home_stripe_and_foreign_threads_steal() {
    let pod = striped_pod(STRIPES);
    let heap = Cxlalloc::attach(pod.spawn_process(), overflow_options()).unwrap();
    let mut producer = heap.register_thread().unwrap();
    fill_home_stripe(&mut producer, 2);
    assert_eq!(heap.stats().small_slabs, 2);

    let home = producer.tid().slot() % STRIPES;
    for stripe in 0..STRIPES {
        assert_eq!(
            stripe_nonempty(&pod, stripe),
            stripe == home,
            "stripe {stripe} (home {home})"
        );
    }

    // A second thread's home stripe is empty: its allocation must
    // work-steal from the producer's stripe, not extend the heap.
    let mut thief = heap.register_thread().unwrap();
    assert_ne!(thief.tid().slot() % STRIPES, home);
    let held: Vec<OffsetPtr> = (0..512).map(|_| thief.alloc(64).unwrap()).collect();
    assert_eq!(heap.stats().small_slabs, 2, "steal extended the heap");
    for p in held {
        thief.dealloc(p).unwrap();
    }
    heap.check_invariants(producer.core()).unwrap();
}

/// Crash matrix over the striped pop: a thread dying mid-steal of a
/// foreign stripe's slab (log written, CAS maybe landed) leaves a
/// recoverable heap, and the orphan is adopted rather than leaked.
#[test]
fn striped_pop_global_crash_points_recover() {
    for &point in &["slab::pop_global::after_log", "slab::pop_global::after_cas"] {
        let pod = striped_pod(STRIPES);
        let heap = Cxlalloc::attach(pod.spawn_process(), overflow_options()).unwrap();
        let mut producer = heap.register_thread().unwrap();
        fill_home_stripe(&mut producer, 2);

        let (tid, crashed) = crash_thread(&heap, CrashPlan { at: point, skip: 0 }, |t| {
            let _ = t.alloc(64).unwrap();
        });
        assert!(crashed, "never reached {point}");
        assert_ne!(tid.slot() % STRIPES, producer.tid().slot() % STRIPES);
        heap.mark_crashed(tid).unwrap();

        // The producer keeps working while the victim is dead.
        for _ in 0..50 {
            let p = producer.alloc(64).unwrap();
            producer.dealloc(p).unwrap();
        }

        let report = heap.recover(tid, producer.core()).unwrap();
        assert!(report.interrupted.is_some(), "{point}");
        heap.check_invariants(producer.core())
            .unwrap_or_else(|e| panic!("invariants after {point}: {e}"));

        // The adopted slot reuses the recovered slab; nothing leaked,
        // so filling a slab's worth of blocks never extends the heap.
        let (mut adopted, _) = heap.adopt(tid, producer.core()).unwrap();
        let held: Vec<OffsetPtr> = (0..512).map(|_| adopted.alloc(64).unwrap()).collect();
        assert_eq!(heap.stats().small_slabs, 2, "{point} leaked a slab");
        for p in held {
            adopted.dealloc(p).unwrap();
        }
        heap.check_invariants(adopted.core()).unwrap();
    }
}

/// Crash matrix over the striped push: a thread dying mid-overflow
/// (slab popped off its unsized list, global push logged / landed)
/// leaves a recoverable heap with the slab on exactly one list.
#[test]
fn striped_push_global_crash_points_recover() {
    for &point in &[
        "slab::push_global::after_pop",
        "slab::push_global::after_log",
        "slab::push_global::after_cas",
    ] {
        let pod = striped_pod(STRIPES);
        let heap = Cxlalloc::attach(pod.spawn_process(), overflow_options()).unwrap();
        let mut survivor = heap.register_thread().unwrap();

        let (tid, crashed) = crash_thread(&heap, CrashPlan { at: point, skip: 0 }, |t| {
            // Two slabs' worth: empty-slab hysteresis retains the last
            // emptied slab per class, so only a *second* emptied slab
            // reaches the unsized list and overflows to the stripe.
            let ptrs: Vec<OffsetPtr> = (0..1024).map(|_| t.alloc(64).unwrap()).collect();
            for p in ptrs {
                t.dealloc(p).unwrap();
            }
        });
        assert!(crashed, "never reached {point}");
        heap.mark_crashed(tid).unwrap();

        let report = heap.recover(tid, survivor.core()).unwrap();
        // At `after_pop` nothing is logged yet (the pop is a cached
        // local-list edit): recovery legitimately finds an idle log.
        if point != "slab::push_global::after_pop" {
            assert!(report.interrupted.is_some(), "{point}");
        }
        heap.check_invariants(survivor.core())
            .unwrap_or_else(|e| panic!("invariants after {point}: {e}"));

        // The pushed (or half-pushed) slab is still reachable once the
        // log records it: a slab's worth of blocks allocates without
        // growing the heap past the victim's two slabs. At `after_pop`
        // nothing is logged and the victim's cached list edits (the
        // retained slab's relink, the pop) are lost with its cache, so
        // one extension is the legitimate worst case.
        let cap = if point == "slab::push_global::after_pop" { 3 } else { 2 };
        let (mut adopted, _) = heap.adopt(tid, survivor.core()).unwrap();
        let held: Vec<OffsetPtr> = (0..512).map(|_| adopted.alloc(64).unwrap()).collect();
        assert!(
            heap.stats().small_slabs <= cap,
            "{point}: slab leaked (heap at {}, cap {cap})",
            heap.stats().small_slabs
        );
        for p in held {
            adopted.dealloc(p).unwrap();
        }
        let p = survivor.alloc(64).unwrap();
        survivor.dealloc(p).unwrap();
        heap.check_invariants(survivor.core()).unwrap();
    }
}

#[derive(Debug, Clone)]
enum StripeOp {
    AllocA,
    AllocB,
    FreeA,
    FreeB,
    Quiesce,
}

fn stripe_op() -> impl Strategy<Value = StripeOp> {
    prop_oneof![
        4 => Just(StripeOp::AllocA),
        3 => Just(StripeOp::AllocB),
        3 => Just(StripeOp::FreeA),
        2 => Just(StripeOp::FreeB),
        1 => Just(StripeOp::Quiesce),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// Striping is semantically invisible: the same two-thread op
    /// sequence on a stripes=1 pod (the oracle) and a stripes=8 pod
    /// yields censuses that both equal the tracked live set at every
    /// quiesce point, and both heaps pass invariants.
    #[test]
    fn striped_census_matches_unsharded_oracle(
        ops in proptest::collection::vec(stripe_op(), 1..200)
    ) {
        let pod_1 = striped_pod(1);
        let pod_8 = striped_pod(STRIPES);
        let heap_1 = Cxlalloc::attach(pod_1.spawn_process(), overflow_options()).unwrap();
        let heap_8 = Cxlalloc::attach(pod_8.spawn_process(), overflow_options()).unwrap();
        let mut a_1 = heap_1.register_thread().unwrap();
        let mut a_8 = heap_8.register_thread().unwrap();
        let mut b_1 = heap_1.register_thread().unwrap();
        let mut b_8 = heap_8.register_thread().unwrap();

        // (oracle ptr, striped ptr) per logical allocation, per thread.
        let mut live_a: Vec<(OffsetPtr, OffsetPtr)> = Vec::new();
        let mut live_b: Vec<(OffsetPtr, OffsetPtr)> = Vec::new();
        for op in &ops {
            match op {
                StripeOp::AllocA => {
                    live_a.push((a_1.alloc(64).unwrap(), a_8.alloc(64).unwrap()));
                }
                StripeOp::AllocB => {
                    live_b.push((b_1.alloc(96).unwrap(), b_8.alloc(96).unwrap()));
                }
                StripeOp::FreeA => {
                    if !live_a.is_empty() {
                        let (p1, p8) = live_a.remove(0);
                        a_1.dealloc(p1).unwrap();
                        a_8.dealloc(p8).unwrap();
                    }
                }
                StripeOp::FreeB => {
                    if let Some((p1, p8)) = live_b.pop() {
                        b_1.dealloc(p1).unwrap();
                        b_8.dealloc(p8).unwrap();
                    }
                }
                StripeOp::Quiesce => {
                    // The census walks the durable image; flush every
                    // handle's cached metadata first.
                    a_1.flush_cache();
                    a_8.flush_cache();
                    b_1.flush_cache();
                    b_8.flush_cache();
                    let mem_1 = pod_1.memory().as_ref();
                    let mem_8 = pod_8.memory().as_ref();
                    let c_1 = cxl_core::audit::census(mem_1, CoreId(13)).unwrap();
                    let c_8 = cxl_core::audit::census(mem_8, CoreId(13)).unwrap();
                    let live = live_a.len() + live_b.len();
                    prop_assert_eq!(c_1.total(), live, "oracle census diverged");
                    prop_assert_eq!(c_8.total(), live, "striped census diverged");
                    let mut want_1: Vec<u64> =
                        live_a.iter().chain(&live_b).map(|(p, _)| p.offset()).collect();
                    let mut want_8: Vec<u64> =
                        live_a.iter().chain(&live_b).map(|(_, p)| p.offset()).collect();
                    want_1.sort_unstable();
                    want_8.sort_unstable();
                    prop_assert_eq!(c_1.all_offsets(), want_1);
                    prop_assert_eq!(c_8.all_offsets(), want_8);
                }
            }
        }
        // Quiesce before the final check: the invariant walk reads the
        // durable image, which live threads' caches are ahead of.
        a_1.flush_cache();
        a_8.flush_cache();
        b_1.flush_cache();
        b_8.flush_cache();
        heap_1.check_invariants(a_1.core()).unwrap();
        heap_8.check_invariants(a_8.core()).unwrap();
    }
}

/// Crash matrix over every combined-publish point: the counter lands on
/// exactly `512 - 4` whether the combiner died before posting took
/// effect, mid-claim, with the log written, after the CAS, or after
/// releasing its claims — and the request word ends EMPTY.
#[test]
fn combined_publish_crash_points_recover() {
    for &point in comb::COMB_CRASH_POINTS {
        let pod = striped_pod(STRIPES);
        let heap = Cxlalloc::attach(pod.spawn_process(), combining_options()).unwrap();
        let mut producer = heap.register_thread().unwrap();
        let ptrs: Vec<OffsetPtr> = (0..512).map(|_| producer.alloc(64).unwrap()).collect();
        assert_eq!(remote_counter(&pod, 0), 512);

        let (tid, crashed) = crash_thread(&heap, CrashPlan { at: point, skip: 0 }, |t| {
            t.force_combining(4);
            for p in &ptrs[..4] {
                t.dealloc(*p).unwrap();
            }
        });
        assert!(crashed, "never reached {point}");
        heap.mark_crashed(tid).unwrap();

        // The producer keeps working while the victim is dead.
        for _ in 0..50 {
            let p = producer.alloc(64).unwrap();
            producer.dealloc(p).unwrap();
        }

        heap.recover(tid, producer.core()).unwrap();
        assert_eq!(
            remote_counter(&pod, 0),
            508,
            "{point}: batch lost or double-published"
        );
        assert_eq!(
            comb::read_word(pod.memory().as_ref(), tid.slot()),
            0,
            "{point}: request word not released"
        );
        heap.check_invariants(producer.core())
            .unwrap_or_else(|e| panic!("invariants after {point}: {e}"));

        let (mut adopted, _) = heap.adopt(tid, producer.core()).unwrap();
        let p = adopted.alloc(64).unwrap();
        adopted.dealloc(p).unwrap();
        heap.check_invariants(adopted.core()).unwrap();
    }
}

/// A combining winner merges a foreign POSTED batch against the same
/// slab into its own publish — one decrement covers both — and
/// DONE-marks the contributor's word with its own identity.
#[test]
fn winner_merges_foreign_posted_batch() {
    let pod = striped_pod(STRIPES);
    let heap = Cxlalloc::attach(pod.spawn_process(), combining_options()).unwrap();
    let mut owner = heap.register_thread().unwrap();
    let ptrs: Vec<OffsetPtr> = (0..512).map(|_| owner.alloc(64).unwrap()).collect();
    assert_eq!(remote_counter(&pod, 0), 512);

    let mut friend = heap.register_thread().unwrap();
    friend.force_combining(4);

    // Simulate a contributor on an unoccupied slot that posted a batch
    // of 7 against the same slab and is waiting for a winner.
    let fake_slot = (0..16)
        .find(|s| *s != owner.tid().slot() && *s != friend.tid().slot())
        .unwrap();
    let mem = pod.memory().as_ref();
    comb::write_word(mem, fake_slot, comb::posted_word(HeapKind::Small, 0, 7));

    // The friend's 4th remote free triggers a combined publish that
    // claims the fake batch: one decrement of 11.
    for p in &ptrs[..4] {
        friend.dealloc(*p).unwrap();
    }
    assert_eq!(remote_counter(&pod, 0), 512 - 11);
    let w = comb::read_word(mem, fake_slot);
    assert!(comb::is_done(w), "contributor word not DONE-marked");
    assert_eq!(
        w,
        comb::done_marked(HeapKind::Small, 0, 7, friend.tid().raw()),
        "DONE word must preserve the batch identity and name the winner"
    );
    assert_eq!(comb::read_word(mem, friend.tid().slot()), 0);

    // Clean up the simulated slot so it cannot confuse later audits.
    comb::write_word(mem, fake_slot, 0);
}

/// A request word stuck in a (stalled) winner's custody forces the
/// direct publish path — the word is not touched, latency is bounded —
/// and a stale DONE word is released on the next publish, after which
/// combining resumes.
#[test]
fn stalled_custody_falls_back_to_direct_path() {
    let pod = striped_pod(STRIPES);
    let heap = Cxlalloc::attach(pod.spawn_process(), combining_options()).unwrap();
    let mut owner = heap.register_thread().unwrap();
    let ptrs: Vec<OffsetPtr> = (0..512).map(|_| owner.alloc(64).unwrap()).collect();

    let mut friend = heap.register_thread().unwrap();
    friend.force_combining(4);
    let mem = pod.memory().as_ref();
    let slot = friend.tid().slot();

    // A previous batch of 4 sits in a stalled winner's custody.
    let custody = comb::claimed_word(HeapKind::Small, 0, 4, 0x77);
    comb::write_word(mem, slot, custody);
    for p in &ptrs[..4] {
        friend.dealloc(*p).unwrap();
    }
    assert_eq!(remote_counter(&pod, 0), 508, "direct fallback lost the batch");
    assert_eq!(
        comb::read_word(mem, slot),
        custody,
        "fallback must leave the custodied word untouched"
    );

    // The winner (or its recovery) eventually DONE-marks the word; the
    // next publish releases it and goes back through the combiner.
    comb::write_word(mem, slot, comb::done_marked(HeapKind::Small, 0, 4, 0x77));
    for p in &ptrs[4..8] {
        friend.dealloc(*p).unwrap();
    }
    assert_eq!(remote_counter(&pod, 0), 504);
    assert_eq!(comb::read_word(mem, slot), 0, "stale DONE word not released");
    heap.check_invariants(owner.core()).unwrap();
}

/// The combined final publish (counter to zero) steals the slab;
/// crashing between the decrement and the steal must still hand the
/// slab to recovery rather than leak it.
#[test]
fn combined_final_publish_steals_after_crash() {
    let pod = striped_pod(STRIPES);
    let heap = Cxlalloc::attach(pod.spawn_process(), combining_options()).unwrap();
    let mut producer = heap.register_thread().unwrap();
    let ptrs: Vec<OffsetPtr> = (0..512).map(|_| producer.alloc(64).unwrap()).collect();
    assert_eq!(heap.stats().small_slabs, 1);

    // 512 remote frees at batch 4 are 128 combined publishes; skip 127
    // crashes the final one right after its CAS lands (counter zero,
    // steal not yet done). Re-force each round: the governor would
    // otherwise disengage across its quiet windows.
    let (tid, crashed) = crash_thread(
        &heap,
        CrashPlan {
            at: "comb::publish::after_cas",
            skip: 127,
        },
        |t| {
            for p in &ptrs {
                t.force_combining(4);
                t.dealloc(*p).unwrap();
            }
        },
    );
    assert!(crashed, "combined drain never reached the final publish");
    assert_eq!(remote_counter(&pod, 0), 0);
    heap.mark_crashed(tid).unwrap();

    let report = heap.recover(tid, producer.core()).unwrap();
    assert!(report.interrupted.is_some());
    heap.check_invariants(producer.core()).unwrap();

    // The drained slab was recovered, not leaked: refilling it must not
    // extend the heap.
    let (mut adopted, _) = heap.adopt(tid, producer.core()).unwrap();
    let held: Vec<OffsetPtr> = (0..512).map(|_| adopted.alloc(64).unwrap()).collect();
    assert_eq!(heap.stats().small_slabs, 1, "stolen slab leaked");
    for p in held {
        adopted.dealloc(p).unwrap();
    }
    heap.check_invariants(adopted.core()).unwrap();
}

/// Recovery of a dead thread resolves its combiner footprint: its own
/// POSTED batch is taken back and republished, and a claim it held on
/// another thread's word is published and DONE-marked so the (live)
/// contributor is never wedged.
#[test]
fn recovery_resolves_dead_threads_posted_batch_and_claims() {
    let pod = striped_pod(STRIPES);
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    let mut owner = heap.register_thread().unwrap();
    let ptrs: Vec<OffsetPtr> = (0..512).map(|_| owner.alloc(64).unwrap()).collect();
    assert_eq!(remote_counter(&pod, 0), 512);

    // The victim dies mid-eager-free (decrement landed, log live).
    let (tid, crashed) = crash_thread(
        &heap,
        CrashPlan {
            at: "slab::remote_free::after_cas",
            skip: 0,
        },
        |t| {
            t.dealloc(ptrs[0]).unwrap();
        },
    );
    assert!(crashed);
    heap.mark_crashed(tid).unwrap();
    assert_eq!(remote_counter(&pod, 0), 511);

    // Fabricate the dead thread's combiner footprint: its own word
    // holds a POSTED batch of 3 nobody claimed, and it died holding a
    // claim of 5 on another slot's word.
    let mem = pod.memory().as_ref();
    let contributor_slot = (0..16)
        .find(|s| *s != owner.tid().slot() && *s != tid.slot())
        .unwrap();
    comb::write_word(mem, tid.slot(), comb::posted_word(HeapKind::Small, 0, 3));
    comb::write_word(
        mem,
        contributor_slot,
        comb::claimed_word(HeapKind::Small, 0, 5, tid.raw()),
    );

    heap.recover(tid, owner.core()).unwrap();
    assert_eq!(
        remote_counter(&pod, 0),
        512 - 1 - 3 - 5,
        "recovery must republish the posted batch and the held claim exactly once"
    );
    assert_eq!(comb::read_word(mem, tid.slot()), 0, "own word not taken back");
    assert_eq!(
        comb::read_word(mem, contributor_slot),
        comb::done_marked(HeapKind::Small, 0, 5, tid.raw()),
        "held claim must be DONE-marked for the live contributor"
    );
    heap.check_invariants(owner.core()).unwrap();

    // Clean the fabricated contributor word.
    comb::write_word(mem, contributor_slot, 0);
}
