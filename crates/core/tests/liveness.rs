//! Pod-liveness acceptance tests (ISSUE tentpole + satellites):
//! lease-based failure detection, raced adoption with exactly one
//! winner, and degraded-mode mCAS behind the device-health breaker.

use std::sync::atomic::{AtomicU32, Ordering};

use cxl_core::explore::Explorer;
use cxl_core::liveness::LivenessDetector;
use cxl_core::sched::SimConfig;
use cxl_core::{AllocError, AttachOptions, Cxlalloc};
use cxl_pod::fault::FaultRule;
use cxl_pod::{BreakerConfig, CoreId, DeviceMode, HwccMode, Pod, PodConfig, SimMemory};

fn sim_pod(mode: HwccMode) -> Pod {
    Pod::with_simulation(PodConfig::small_for_tests(), mode).unwrap()
}

fn sim(pod: &Pod) -> &SimMemory {
    pod.memory().as_any().downcast_ref::<SimMemory>().unwrap()
}

/// Satellite: two survivors race to adopt the same dead thread — the
/// DEAD→ADOPTING CAS linearizes the race, exactly one wins, and the
/// loser gets a clean typed error. Run under injected mCAS contention
/// so the registry CASes themselves bounce along the way.
#[test]
fn adoption_race_has_exactly_one_winner() {
    for round in 0..8u64 {
        let pod = sim_pod(HwccMode::None);
        let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();

        // Victim allocates, then "hangs" (handle dropped, registry LIVE).
        let mut victim = heap.register_thread().unwrap();
        let tid = victim.tid();
        let ptr = victim.alloc(128).unwrap();
        drop(victim);
        assert!(heap.declare_dead(tid).unwrap());

        // A transient burst of device contention hits the racers' CASes
        // (seeded differently per round; short of the breaker trip).
        sim(&pod).faults().push(FaultRule::device_outage(2 + round % 4));

        let wins = AtomicU32::new(0);
        let raced = AtomicU32::new(0);
        std::thread::scope(|s| {
            for core in [2u16, 3u16] {
                let heap = heap.clone();
                let (wins, raced) = (&wins, &raced);
                s.spawn(move || match heap.try_adopt(tid, CoreId(core)) {
                    Ok((handle, _report)) => {
                        // The winner owns the slot and can use it.
                        let mut handle = handle;
                        handle.dealloc(ptr).unwrap();
                        handle.alloc(64).unwrap();
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(AllocError::AdoptionRaced { thread }) => {
                        assert_eq!(thread, tid);
                        raced.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(other) => panic!("loser got unclean error: {other}"),
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1, "round {round}");
        assert_eq!(raced.load(Ordering::Relaxed), 1, "round {round}");
        cxl_core::invariants::check(pod.memory().as_ref(), CoreId(0)).unwrap();
    }
}

/// Satellite: adopting a slot that is not DEAD is rejected with a typed
/// error, not a panic or a silent success. A LIVE slot reads as a lost
/// race (an adopter may have already committed); a FREE slot is a state
/// error.
#[test]
fn adopting_non_dead_slots_is_rejected() {
    let pod = Pod::new(PodConfig::small_for_tests()).unwrap();
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    let t = heap.register_thread().unwrap();
    match heap.try_adopt(t.tid(), CoreId(1)) {
        Err(AllocError::AdoptionRaced { thread }) => assert_eq!(thread, t.tid()),
        other => panic!("expected AdoptionRaced, got {other:?}"),
    }
    let free = cxl_core::ThreadId::new(pod.layout().max_threads as u16).unwrap();
    match heap.try_adopt(free, CoreId(1)) {
        Err(AllocError::BadThreadState { .. }) => {}
        other => panic!("expected BadThreadState, got {other:?}"),
    }
}

/// Tentpole: a silent thread is detected by lease expiry, flipped DEAD,
/// and adopted; its memory survives and the heap stays consistent.
#[test]
fn lease_detection_end_to_end() {
    let pod = sim_pod(HwccMode::Limited);
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();

    let live = heap.register_thread().unwrap();
    let mut victim = heap.register_thread().unwrap();
    let victim_tid = victim.tid();
    let ptr = victim.alloc(256).unwrap();
    unsafe { victim.resolve(ptr, 256).unwrap().write_bytes(0xAB, 256) };
    drop(victim); // hang: lease frozen, registry still LIVE

    let mut detector = LivenessDetector::new(pod.layout().max_threads, 3);
    let mut expired = Vec::new();
    for _ in 0..4 {
        live.heartbeat().unwrap();
        let report = detector.tick(&heap, live.core()).unwrap();
        expired.extend(report.expired);
    }
    assert_eq!(expired, vec![victim_tid], "the silent thread, and only it");

    let (adopted, _report) = heap.try_adopt(victim_tid, CoreId(3)).unwrap();
    assert_eq!(unsafe { *adopted.resolve(ptr, 256).unwrap() }, 0xAB);
    cxl_core::invariants::check(pod.memory().as_ref(), CoreId(0)).unwrap();
}

/// A hung thread's slot is stolen (declared dead and adopted) while the
/// original handle still exists. The stale incarnation's next heartbeat
/// must fail with the typed [`AllocError::LeaseStolen`] — never
/// silently renew the adopter's lease — while the adopter's own
/// heartbeats keep working.
#[test]
fn heartbeat_after_steal_is_rejected() {
    let pod = sim_pod(HwccMode::Limited);
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();

    let victim = heap.register_thread().unwrap();
    let tid = victim.tid();
    victim.heartbeat().unwrap();

    // The victim "hangs" (keeps its handle, stops heartbeating); a
    // detector declares it dead and a survivor adopts the slot.
    assert!(heap.declare_dead(tid).unwrap());
    let (adopted, _) = heap.try_adopt(tid, CoreId(3)).unwrap();

    // The stale incarnation wakes up and heartbeats: typed rejection.
    match victim.heartbeat() {
        Err(AllocError::LeaseStolen {
            thread,
            held_epoch,
            found_epoch,
        }) => {
            assert_eq!(thread, tid);
            assert_ne!(held_epoch, found_epoch);
        }
        other => panic!("stale heartbeat must fail as stolen, got {other:?}"),
    }
    // Repeatedly: the rejection is stable, not a one-shot race artifact.
    assert!(matches!(
        victim.heartbeat(),
        Err(AllocError::LeaseStolen { .. })
    ));

    // The new incarnation owns the lease and renews freely.
    adopted.heartbeat().unwrap();
    adopted.heartbeat().unwrap();
}

/// Satellite: persistent device faults trip the breaker into the
/// software-fallback CAS path; allocation keeps working throughout, and
/// the pod heals back to NMP once the faults clear. MemStats counters
/// witness each phase.
#[test]
fn breaker_degrades_and_heals_under_persistent_faults() {
    let pod = sim_pod(HwccMode::None);
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    let mut t = heap.register_thread().unwrap();
    let before = pod.memory().stats();
    assert_eq!(sim(&pod).nmp().device_mode(), DeviceMode::Nmp);

    // A long outage: every mCAS pair bounces until the budget drains.
    // Allocations (and their slab-acquisition CASes) keep succeeding;
    // heartbeats are one registry CAS each and keep the lease fresh.
    sim(&pod).faults().push(FaultRule::device_outage(200));
    let ptrs: Vec<_> = (0..32).map(|_| t.alloc(64).unwrap()).collect();
    for _ in 0..4 {
        t.heartbeat().unwrap();
    }

    let mid = pod.memory().stats().since(&before);
    assert!(mid.breaker_trips >= 1, "outage never tripped the breaker");
    assert!(mid.fallback_cas >= 1, "no CAS was served by the fallback path");
    assert_eq!(sim(&pod).nmp().device_mode(), DeviceMode::Fallback);

    // Outage over: continued CAS traffic reaches the probe window and
    // heals the device back to NMP mode.
    sim(&pod).faults().clear();
    for _ in 0..8 {
        t.heartbeat().unwrap();
    }
    for ptr in ptrs {
        t.dealloc(ptr).unwrap();
    }
    let after = pod.memory().stats().since(&before);
    assert!(after.breaker_heals >= 1, "breaker never healed after the outage");
    assert_eq!(sim(&pod).nmp().device_mode(), DeviceMode::Nmp);
    cxl_core::invariants::check(pod.memory().as_ref(), CoreId(0)).unwrap();
}

/// Satellite: when the breaker is configured to never trip within the
/// retry budget, a persistent outage surfaces as the typed
/// `DeviceContention` error instead of the old ambiguous CAS residue.
#[test]
fn exhausted_retries_surface_typed_contention_error() {
    let pod = sim_pod(HwccMode::None);
    sim(&pod).nmp().set_breaker_config(BreakerConfig {
        trip_after: 1_000, // out of reach: no fallback rescue
        probe_after: 4,
    });
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default()).unwrap();
    sim(&pod).faults().push(FaultRule::device_outage(1_000));
    match heap.register_thread() {
        Err(AllocError::DeviceContention { retries }) => {
            assert!(retries > 0);
        }
        other => panic!("expected DeviceContention, got {other:?}"),
    }
    // Every bounce in the drained budget was paced by backoff.
    assert!(pod.memory().stats().cas_retries >= 1);
}

/// Acceptance: a heartbeat-stop campaign over random liveness schedules
/// detects every dead thread within the lease budget, adopts each
/// exactly once, and passes every invariant — and the same seeds replay
/// byte-identically.
#[test]
fn heartbeat_stop_campaign_detects_and_adopts() {
    let explorer = Explorer {
        liveness: true,
        config: SimConfig {
            // Tight budget so leases expire within a schedule: one tick
            // records the frozen lease, the next declares it dead.
            lease_expiry_ticks: 1,
            ..SimConfig::default()
        },
        steps_per_run: 80,
        ..Explorer::default()
    };
    let report = explorer.explore(10_000, 30);
    assert!(report.all_passed(), "failures: {:?}", report.failures);
    assert!(report.total_hangs > 0, "campaign never hung a host");
    assert!(report.total_detections > 0, "no lease ever expired in-schedule");
    // Every hang is recovered exactly once: by in-schedule adoption or
    // end-of-run cleanup, both counted in `recoveries` along with
    // explicit crash recoveries.
    assert!(report.total_recoveries >= report.total_hangs + report.total_crashes);

    for seed in [10_003u64, 10_017, 10_029] {
        let a = explorer.run_seed(seed).unwrap();
        let b = explorer.run_seed(seed).unwrap();
        assert_eq!(a, b, "seed {seed} diverged between runs");
    }
}

/// Acceptance: the same campaign under mCAS-only synchronization with
/// device-outage bursts in the mix completes with zero livelocks (no
/// run fails, none spins forever) and replays byte-identically.
#[test]
fn degraded_mcas_campaign_completes_and_replays() {
    let explorer = Explorer {
        liveness: true,
        config: SimConfig {
            mode: HwccMode::None,
            ..SimConfig::default()
        },
        steps_per_run: 40,
        ..Explorer::default()
    };
    let report = explorer.explore(20_000, 15);
    assert!(report.all_passed(), "failures: {:?}", report.failures);
    assert!(report.total_degrades > 0, "no device outage was injected");

    for seed in [20_001u64, 20_008] {
        let a = explorer.run_seed(seed).unwrap();
        let b = explorer.run_seed(seed).unwrap();
        assert_eq!(a, b, "seed {seed} diverged between runs");
    }
}
