//! PR 4 acceptance tests: batched remote frees, per-thread magazines,
//! and fence coalescing.
//!
//! * Crash matrix over the batched publish path
//!   ([`cxl_core::slab::BATCH_CRASH_POINTS`]): a decrement-by-k must be
//!   crash-equivalent to k delayed decrements-by-1 — the logged batch
//!   width lets recovery redo exactly the undelivered decrement, and
//!   detect prevents a double decrement when the CAS already landed.
//! * Differential proptest: magazine-enabled and magazine-disabled
//!   heaps driven by the same op sequence produce identical
//!   post-quiesce slab bitsets and identical bitset-visible live bytes
//!   at every quiesce point.
//! * Differential (seeded): a producer/consumer run with batch 8 ends
//!   with exactly the HWcc counters of the eager (batch 1) run once the
//!   consumer's buffer drains at its quiesce point.

use cxl_core::bitset::BlockBits;
use cxl_core::cell::{flags, Detect, SwccHeader};
use cxl_core::crash::{self, CrashPlan};
use cxl_core::{AttachOptions, Cxlalloc, OffsetPtr, ThreadId};
use cxl_pod::{CoreId, HwccMode, Pod, PodConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pod() -> Pod {
    Pod::with_simulation(
        PodConfig {
            small_max_slabs: 256,
            ..PodConfig::small_for_tests()
        },
        HwccMode::Limited,
    )
    .unwrap()
}

/// Attach options with every PR-4 amortization enabled.
fn batched_options(batch: u32) -> AttachOptions {
    AttachOptions {
        remote_free_batch: batch,
        magazine_capacity: 4,
        coalesce_fences: true,
        ..AttachOptions::default()
    }
}

/// Runs `victim` on a fresh thread with a crash plan armed; returns the
/// victim's tid plus whether the crash fired.
fn crash_thread(
    heap: &Cxlalloc,
    plan: CrashPlan,
    victim: impl FnOnce(&mut cxl_core::ThreadHandle) + Send,
) -> (ThreadId, bool) {
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut t = heap.register_thread().unwrap();
            let tid = t.tid();
            crash::arm(plan);
            let crashed = crash::catch(std::panic::AssertUnwindSafe(|| victim(&mut t))).is_err();
            crash::disarm();
            (tid, crashed)
        })
        .join()
        .unwrap()
    })
}

/// Reads a small-heap slab's HWcc remote counter from durable memory.
fn remote_counter(pod: &Pod, slab: u32) -> u32 {
    let mem = pod.memory().as_ref();
    Detect::unpack(mem.load_u64(CoreId(13), mem.layout().small.hwcc_desc_at(slab))).payload
}

/// Crash matrix: every label between buffering and publish, at several
/// skips, with a live survivor and cross-thread recovery + invariants.
#[test]
fn batched_publish_crash_points_recover() {
    for &point in cxl_core::slab::BATCH_CRASH_POINTS {
        for skip in [0u32, 10] {
            let pod = pod();
            let heap = Cxlalloc::attach(pod.spawn_process(), batched_options(8)).unwrap();
            let mut producer = heap.register_thread().unwrap();
            let ptrs: Vec<OffsetPtr> = (0..512).map(|_| producer.alloc(64).unwrap()).collect();

            let (tid, crashed) = crash_thread(&heap, CrashPlan { at: point, skip }, |t| {
                for p in &ptrs {
                    t.dealloc(*p).unwrap();
                }
            });
            assert!(crashed, "never reached {point} (skip {skip})");
            heap.mark_crashed(tid).unwrap();

            // The producer keeps working while the victim is dead.
            for _ in 0..100 {
                let p = producer.alloc(64).unwrap();
                producer.dealloc(p).unwrap();
            }

            let report = heap.recover(tid, producer.core()).unwrap();
            assert!(report.interrupted.is_some(), "{point} skip {skip}");
            heap.check_invariants(producer.core())
                .unwrap_or_else(|e| panic!("invariants after {point} skip {skip}: {e}"));

            // The adopted slot is fully usable; frees that were still
            // buffered at the crash were republished from the victim's
            // durable header line during recovery (see
            // `buffered_frees_republished_after_crash` for the direct
            // counter assertion).
            let (mut adopted, _) = heap.adopt(tid, producer.core()).unwrap();
            let fresh: Vec<OffsetPtr> = (0..256).map(|_| adopted.alloc(64).unwrap()).collect();
            for p in fresh {
                adopted.dealloc(p).unwrap();
            }
            heap.check_invariants(adopted.core()).unwrap();
        }
    }
}

/// The batched final publish steals the slab; crashing between the
/// decrement-to-zero and the steal push must still recover the slab.
#[test]
fn batched_steal_crash_point_recovers() {
    let pod = pod();
    let heap = Cxlalloc::attach(pod.spawn_process(), batched_options(8)).unwrap();
    let mut producer = heap.register_thread().unwrap();
    let ptrs: Vec<OffsetPtr> = (0..512).map(|_| producer.alloc(64).unwrap()).collect();

    let (tid, crashed) = crash_thread(
        &heap,
        CrashPlan {
            at: "slab::remote_free::before_steal_push",
            skip: 0,
        },
        |t| {
            for p in &ptrs {
                t.dealloc(*p).unwrap();
            }
        },
    );
    assert!(crashed, "batched drain never reached the steal");
    heap.mark_crashed(tid).unwrap();
    let slabs_before = heap.stats().small_slabs;
    let (mut adopted, report) = heap.adopt(tid, CoreId(5)).unwrap();
    assert!(
        report.outcome.contains("stolen") || report.outcome.contains("redone"),
        "unexpected outcome: {}",
        report.outcome
    );
    // The stolen slab is on the adopted thread's unsized list: new
    // allocations must not extend the heap.
    let p: Vec<OffsetPtr> = (0..512).map(|_| adopted.alloc(64).unwrap()).collect();
    assert_eq!(heap.stats().small_slabs, slabs_before);
    for ptr in p {
        adopted.dealloc(ptr).unwrap();
    }
    heap.check_invariants(adopted.core()).unwrap();
}

/// Decrement-by-k ≡ k decrements-by-1, verified on the counter itself:
/// a crash before the CAS leaves the counter untouched and recovery
/// redoes the full logged width; a crash after the CAS leaves it
/// decremented by exactly k and detect forbids a second decrement.
#[test]
fn publish_crash_counter_equivalence() {
    const BATCH: u32 = 4;
    for (point, at_crash, after_recovery) in [
        // CAS not yet attempted: 512 at crash, redo lands the 4.
        ("slab::remote_free::publish_after_log", 512u32, 508u32),
        // CAS landed: already 508, detect must not redo.
        ("slab::remote_free::publish_after_cas", 508, 508),
    ] {
        let pod = pod();
        let heap = Cxlalloc::attach(pod.spawn_process(), batched_options(BATCH)).unwrap();
        let mut producer = heap.register_thread().unwrap();
        // Exactly one 64 B slab (512 blocks), full and detached.
        let ptrs: Vec<OffsetPtr> = (0..512).map(|_| producer.alloc(64).unwrap()).collect();
        let slab = pod.layout().small.slab_of(ptrs[0].offset()).unwrap();
        assert_eq!(remote_counter(&pod, slab), 512);

        let (tid, crashed) = crash_thread(&heap, CrashPlan { at: point, skip: 0 }, |t| {
            // The BATCH-th free fills the slab's buffer entry and
            // triggers the publish this plan crashes.
            for p in &ptrs[..BATCH as usize] {
                t.dealloc(*p).unwrap();
            }
        });
        assert!(crashed, "never reached {point}");
        assert_eq!(remote_counter(&pod, slab), at_crash, "{point}: counter at crash");
        heap.mark_crashed(tid).unwrap();
        let report = heap.recover(tid, producer.core()).unwrap();
        assert!(report.interrupted.is_some(), "{point}");
        assert_eq!(
            remote_counter(&pod, slab),
            after_recovery,
            "{point}: counter after recovery"
        );
        heap.check_invariants(producer.core()).unwrap();
    }
}

/// The PR-4 deferral, closed: frees that are *buffered but unpublished*
/// when a thread dies must survive the crash. The victim buffers 5
/// frees against slab A (below the batch threshold, so they only exist
/// in its DRAM buffer and its durable header line), then crashes inside
/// the publish of slab B's full batch. Recovery must (a) settle slab
/// B's logged batch exactly once — redo when the CAS had not landed,
/// detect-skip when it had — and (b) republish slab A's 5 buffered
/// decrements from the durable line, leaving zero leaked blocks.
#[test]
fn buffered_frees_republished_after_crash() {
    const BATCH: u32 = 8;
    for (point, b_at_crash) in [
        // CAS not yet attempted: B still holds all 512 at the crash.
        ("slab::remote_free::publish_after_log", 512u32),
        // CAS landed: B already decremented by the batch.
        ("slab::remote_free::publish_after_cas", 504),
    ] {
        let pod = pod();
        let heap = Cxlalloc::attach(pod.spawn_process(), batched_options(BATCH)).unwrap();
        let mut producer = heap.register_thread().unwrap();
        // Two full 64 B slabs: A = ptrs[..512], B = ptrs[512..].
        let ptrs: Vec<OffsetPtr> = (0..1024).map(|_| producer.alloc(64).unwrap()).collect();
        let slab_a = pod.layout().small.slab_of(ptrs[0].offset()).unwrap();
        let slab_b = pod.layout().small.slab_of(ptrs[512].offset()).unwrap();
        assert_ne!(slab_a, slab_b);

        let (tid, crashed) = crash_thread(&heap, CrashPlan { at: point, skip: 0 }, |t| {
            // 5 buffered frees against A (durably recorded, unpublished)…
            for p in &ptrs[..5] {
                t.dealloc(*p).unwrap();
            }
            // …then fill B's buffer entry; the 8th free triggers the
            // publish this plan crashes inside.
            for p in &ptrs[512..512 + BATCH as usize] {
                t.dealloc(*p).unwrap();
            }
        });
        assert!(crashed, "never reached {point}");
        assert_eq!(remote_counter(&pod, slab_a), 512, "{point}: A untouched at crash");
        assert_eq!(remote_counter(&pod, slab_b), b_at_crash, "{point}: B at crash");

        heap.mark_crashed(tid).unwrap();
        let report = heap.recover(tid, producer.core()).unwrap();
        assert!(report.interrupted.is_some(), "{point}");
        assert_eq!(
            remote_counter(&pod, slab_a),
            507,
            "{point}: A's buffered frees must be republished, not leaked"
        );
        assert_eq!(
            remote_counter(&pod, slab_b),
            504,
            "{point}: B's logged batch must land exactly once"
        );
        heap.check_invariants(producer.core()).unwrap();

        // A second recovery pass must be a no-op: the durable line was
        // drained, so nothing can be republished twice.
        let (mut adopted, _) = heap.adopt(tid, producer.core()).unwrap();
        assert_eq!(remote_counter(&pod, slab_a), 507, "{point}: adopt must not republish");
        assert_eq!(remote_counter(&pod, slab_b), 504, "{point}: adopt must not republish");
        let fresh: Vec<OffsetPtr> = (0..64).map(|_| adopted.alloc(64).unwrap()).collect();
        for p in fresh {
            adopted.dealloc(p).unwrap();
        }
        heap.check_invariants(adopted.core()).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Magazine differential: same ops, magazines on vs off.
// ---------------------------------------------------------------------------

/// Sums live (allocated) bytes of the small heap's sized slabs from the
/// durable bitsets, and hashes the full durable bitset image. The
/// reader flushes its own lines first so repeated quiesce reads on the
/// same core never see stale cache contents.
fn durable_small_image(pod: &Pod, class: u8) -> (u64, u64) {
    let mem = pod.memory().as_ref();
    let core = CoreId(13);
    let hl = &mem.layout().small;
    let table = cxl_core::class::SMALL_CLASSES_TABLE;
    let blocks = table.blocks_per_slab(class);
    let len = Detect::unpack(mem.load_u64(core, hl.global_len)).payload;
    let mut live = 0u64;
    let mut hash = 0xcbf29ce484222325u64; // FNV-1a
    for slab in 0..len {
        mem.flush(core, hl.swcc_desc_at(slab), hl.swcc_desc_stride);
        mem.fence(core);
        let header = SwccHeader::unpack(mem.load_u64(core, hl.swcc_desc_at(slab)));
        let sized = header.flags & flags::SIZED != 0;
        if sized {
            assert_eq!(header.class, class, "single-class workload");
            let bits = BlockBits::new(mem, hl.bitset_at(slab), blocks);
            live += (blocks - bits.count_set(core)) as u64 * table.block_size(class) as u64;
        }
        for w in 0..(blocks as u64).div_ceil(64) {
            let word = mem.load_u64(core, hl.bitset_at(slab) + w * 8);
            hash = (hash ^ word).wrapping_mul(0x100000001b3);
        }
    }
    (live, hash)
}

#[derive(Debug, Clone)]
enum DiffOp {
    Alloc,
    FreeOldest,
    FreeNewest,
    Quiesce,
}

fn diff_op() -> impl Strategy<Value = DiffOp> {
    prop_oneof![
        4 => Just(DiffOp::Alloc),
        2 => Just(DiffOp::FreeOldest),
        2 => Just(DiffOp::FreeNewest),
        1 => Just(DiffOp::Quiesce),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Magazines are semantically invisible: the same single-class op
    /// sequence on a magazine-enabled and a magazine-disabled heap
    /// yields, at every quiesce point and after a full drain, identical
    /// bitset-visible live bytes (== the model's) and an identical
    /// durable bitset image.
    #[test]
    fn magazine_differential_identical_quiesce_state(
        ops in proptest::collection::vec(diff_op(), 1..250)
    ) {
        let class = cxl_core::class::SMALL_CLASSES_TABLE.class_of(64).unwrap();
        let pod_off = pod();
        let pod_on = pod();
        let heap_off =
            Cxlalloc::attach(pod_off.spawn_process(), AttachOptions::default()).unwrap();
        let heap_on = Cxlalloc::attach(pod_on.spawn_process(), AttachOptions {
            magazine_capacity: 8,
            coalesce_fences: true,
            ..AttachOptions::default()
        })
        .unwrap();
        let mut t_off = heap_off.register_thread().unwrap();
        let mut t_on = heap_on.register_thread().unwrap();

        let mut live_off: Vec<OffsetPtr> = Vec::new();
        let mut live_on: Vec<OffsetPtr> = Vec::new();
        for op in &ops {
            match op {
                DiffOp::Alloc => {
                    live_off.push(t_off.alloc(64).unwrap());
                    live_on.push(t_on.alloc(64).unwrap());
                }
                DiffOp::FreeOldest => {
                    if !live_off.is_empty() {
                        t_off.dealloc(live_off.remove(0)).unwrap();
                        t_on.dealloc(live_on.remove(0)).unwrap();
                    }
                }
                DiffOp::FreeNewest => {
                    if let Some(p) = live_off.pop() {
                        t_off.dealloc(p).unwrap();
                        t_on.dealloc(live_on.pop().unwrap()).unwrap();
                    }
                }
                DiffOp::Quiesce => {
                    t_off.flush_cache();
                    t_on.flush_cache();
                    let (bytes_off, _) = durable_small_image(&pod_off, class);
                    let (bytes_on, _) = durable_small_image(&pod_on, class);
                    prop_assert_eq!(bytes_off, live_off.len() as u64 * 64);
                    prop_assert_eq!(bytes_on, bytes_off, "live bytes diverged mid-run");
                }
            }
        }

        // Full drain, then quiesce: the durable images must be equal
        // word for word (same slabs, all blocks free in both).
        for p in live_off.drain(..) {
            t_off.dealloc(p).unwrap();
        }
        for p in live_on.drain(..) {
            t_on.dealloc(p).unwrap();
        }
        t_off.flush_local_caches();
        t_on.flush_local_caches();
        t_off.flush_cache();
        t_on.flush_cache();
        let (bytes_off, hash_off) = durable_small_image(&pod_off, class);
        let (bytes_on, hash_on) = durable_small_image(&pod_on, class);
        prop_assert_eq!(bytes_off, 0);
        prop_assert_eq!(bytes_on, 0);
        prop_assert_eq!(
            heap_off.stats().small_slabs,
            heap_on.stats().small_slabs,
            "magazines changed slab consumption"
        );
        prop_assert_eq!(hash_off, hash_on, "post-quiesce bitsets diverged");
        heap_off.check_invariants(t_off.core()).unwrap();
        heap_on.check_invariants(t_on.core()).unwrap();
    }
}

/// Batching differential: a producer/consumer run with batch 8 must end
/// (after the consumer's drain point publishes its buffer) with exactly
/// the per-slab HWcc counters of the eager run, for the same seeded
/// dealloc order — and must account every delivered free in
/// `MemStats::remote_free_batched`.
#[test]
fn batched_remote_free_differential_matches_eager() {
    for seed in [1u64, 7, 42] {
        let run = |batch: u32| -> (Vec<u32>, u64) {
            let pod = pod();
            let heap = Cxlalloc::attach(
                pod.spawn_process(),
                AttachOptions {
                    remote_free_batch: batch,
                    coalesce_fences: batch > 1,
                    ..AttachOptions::default()
                },
            )
            .unwrap();
            let mut producer = heap.register_thread().unwrap();
            let ptrs: Vec<OffsetPtr> = (0..600).map(|_| producer.alloc(64).unwrap()).collect();

            // Shuffle and free 450 of the 600 blocks remotely.
            let mut order: Vec<usize> = (0..ptrs.len()).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut consumer = heap.register_thread().unwrap();
            for &i in order.iter().take(450) {
                consumer.dealloc(ptrs[i]).unwrap();
            }
            // The consumer's quiesce drains its pending-free buffer.
            consumer.flush_local_caches();
            consumer.flush_cache();
            producer.flush_cache();
            heap.check_invariants(consumer.core()).unwrap();

            let slabs = heap.stats().small_slabs;
            let counters = (0..slabs).map(|s| remote_counter(&pod, s)).collect();
            (counters, heap.stats().mem.remote_free_batched)
        };

        let (eager, eager_batched) = run(1);
        let (batched, batched_count) = run(8);
        assert_eq!(eager, batched, "seed {seed}: counters diverged");
        assert_eq!(eager_batched, 0, "eager path must not count batched frees");
        assert_eq!(
            batched_count, 450,
            "seed {seed}: every delivered free must be accounted"
        );
    }
}
