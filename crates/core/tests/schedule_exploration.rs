//! Acceptance tests for the schedule-exploration harness (ISSUE
//! tentpole): random schedules over multiple simulated hosts, with and
//! without injected faults, deterministic replay from seeds, and
//! shrinking of failing schedules to minimal reproducers.

use cxl_core::explore::Explorer;
use cxl_core::sched::{self, FaultPlan, Schedule, SimConfig, Step};
use cxl_pod::fault::{FaultKind, FaultRule};
use cxl_pod::HwccMode;

/// Acceptance: with no injected faults, at least 100 random schedules
/// over at least 2 simulated hosts all pass `invariants::check` and
/// recover every crashed host.
#[test]
fn hundred_random_schedules_pass_without_faults() {
    let explorer = Explorer::default();
    assert!(explorer.config.hosts >= 2);
    let report = explorer.explore(0, 100);
    assert_eq!(report.runs, 100);
    assert!(
        report.all_passed(),
        "failing seeds: {:?}",
        report.failures
    );
    // The campaign must exercise real work, not trivially pass.
    assert!(report.total_allocs > 500, "allocs: {}", report.total_allocs);
    assert!(report.total_crashes > 0, "no schedule ever crashed a host");
    assert_eq!(report.total_crashes, report.total_recoveries);
}

/// The same campaign under mCAS-only synchronization (no HWcc at all):
/// schedules still pass, exercising the NMP path end to end.
#[test]
fn random_schedules_pass_under_mcas_mode() {
    let explorer = Explorer {
        config: SimConfig {
            mode: HwccMode::None,
            ..SimConfig::default()
        },
        steps_per_run: 25,
        ..Explorer::default()
    };
    let report = explorer.explore(7_000, 20);
    assert!(report.all_passed(), "failures: {:?}", report.failures);
}

/// Acceptance: an injected stale-read bug — core 0's flushes silently
/// dropped, so its stores never reach durable memory — is caught
/// deterministically by some schedule, and the failing seed replays
/// byte-identically: same failing step, same message, twice in a row.
#[test]
fn injected_dropped_flush_bug_is_caught_and_replays_identically() {
    let explorer = Explorer {
        plan: FaultPlan::of(vec![FaultRule::new(FaultKind::DropFlush).on_core(0)]),
        steps_per_run: 30,
        ..Explorer::default()
    };
    let seed = (0..300u64)
        .find(|&s| explorer.run_seed(s).is_err())
        .expect("dropping every core-0 flush must corrupt some schedule");

    let first = explorer.run_seed(seed).unwrap_err();
    let second = explorer.run_seed(seed).unwrap_err();
    assert_eq!(first.step, second.step, "failing step must replay");
    assert_eq!(
        first.message, second.message,
        "failure message must replay byte-identically"
    );
}

/// Passing runs also replay byte-identically: the full fingerprint over
/// every step outcome and allocated offset is equal across runs.
#[test]
fn passing_runs_replay_byte_identically() {
    let explorer = Explorer::default();
    for seed in [3, 17, 91] {
        let a = explorer.run_seed(seed).unwrap();
        let b = explorer.run_seed(seed).unwrap();
        assert_eq!(a, b, "seed {seed} diverged between runs");
        assert_ne!(a.fingerprint, 0);
    }
}

/// Different seeds produce different schedules and (overwhelmingly)
/// different fingerprints — the fingerprint actually captures the run.
#[test]
fn distinct_seeds_produce_distinct_fingerprints() {
    let explorer = Explorer::default();
    let a = explorer.run_seed(11).unwrap();
    let b = explorer.run_seed(12).unwrap();
    assert_ne!(a.fingerprint, b.fingerprint);
}

/// Acceptance: shrinking a failing schedule yields a minimal reproducer
/// that still fails under the same seed and fault plan.
#[test]
fn failing_schedule_shrinks_to_minimal_reproducer() {
    let explorer = Explorer {
        plan: FaultPlan::of(vec![FaultRule::new(FaultKind::DropFlush).on_core(0)]),
        steps_per_run: 30,
        ..Explorer::default()
    };
    let seed = (0..300u64)
        .find(|&s| explorer.run_seed(s).is_err())
        .expect("no failing seed found");
    let schedule = explorer.schedule_for(seed);
    let shrunk = explorer.shrink(&schedule);
    assert!(explorer.fails(&shrunk));
    assert!(shrunk.steps.len() < schedule.steps.len(), "shrink removed nothing");
    // 1-minimal: every remaining step is load-bearing.
    for i in 0..shrunk.steps.len() {
        let mut steps = shrunk.steps.clone();
        steps.remove(i);
        assert!(
            !explorer.fails(&Schedule {
                seed,
                hosts: shrunk.hosts,
                steps
            }),
            "step {i} of the shrunk schedule is removable"
        );
    }
}

/// Benign faults — virtual-clock delays and bounded transient mCAS
/// contention — never violate correctness: schedules pass, only slower.
#[test]
fn benign_fault_plans_do_not_violate_invariants() {
    let explorer = Explorer {
        plan: FaultPlan::of(vec![
            FaultRule::new(FaultKind::DelayFlush(900)).times(64),
            FaultRule::new(FaultKind::DelayWriteback(250)),
            FaultRule::new(FaultKind::McasDelay(1_500)).times(32),
            FaultRule::new(FaultKind::McasContention).after(2).times(8),
        ]),
        steps_per_run: 25,
        ..Explorer::default()
    };
    let report = explorer.explore(400, 12);
    assert!(report.all_passed(), "failures: {:?}", report.failures);
}

/// An explicit fault-plan scenario from the ISSUE: "crash host 2 at
/// slab_push step 3, then recover on host 0" — expressed directly as a
/// schedule over three hosts.
#[test]
fn scripted_crash_host_two_recover_on_host_zero() {
    let config = SimConfig {
        hosts: 3,
        ..SimConfig::default()
    };
    let schedule = Schedule {
        seed: 42,
        hosts: 3,
        steps: vec![
            Step::Alloc { host: 0, size: 128 },
            Step::Alloc { host: 1, size: 128 },
            Step::Alloc { host: 2, size: 128 },
            Step::Crash {
                host: 2,
                at: "slab::push_global::after_cas",
                skip: 3,
            },
            Step::Alloc { host: 0, size: 64 },
            Step::Recover { host: 2, via: 0 },
            Step::Alloc { host: 2, size: 64 },
        ],
    };
    let report = sched::run(&config, &schedule, &FaultPlan::none()).unwrap();
    assert_eq!(report.recoveries, 1);
}

/// A host crash abandoning its entire cache (AbandonCache fired at a
/// flush site) is survivable: recovery rebuilds from durable state.
#[test]
fn abandon_cache_fault_with_crash_recovers() {
    let explorer = Explorer {
        plan: FaultPlan::of(vec![
            FaultRule::new(FaultKind::AbandonCache).on_core(1).once(),
        ]),
        steps_per_run: 20,
        ..Explorer::default()
    };
    // AbandonCache mimics an untimely host reset: dirty lines vanish.
    // Runs may fail (that is the point of the injector) but must fail
    // deterministically, and plenty of seeds survive.
    let mut survived = 0;
    for seed in 900..920u64 {
        match (explorer.run_seed(seed), explorer.run_seed(seed)) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "seed {seed} diverged");
                survived += 1;
            }
            (Err(a), Err(b)) => {
                assert_eq!(a.step, b.step, "seed {seed} diverged");
                assert_eq!(a.message, b.message, "seed {seed} diverged");
            }
            (a, b) => panic!("seed {seed} nondeterministic: {a:?} vs {b:?}"),
        }
    }
    assert!(survived > 0, "every seed failed under a single AbandonCache");
}

/// The pinned golden fingerprints live in
/// `tests/common/golden_fingerprints.rs`, shared with the
/// `print_fingerprints` example that regenerates them (see
/// EXPERIMENTS.md for the re-pin protocol). A failure here means a
/// perf change leaked into semantics; if the behaviour change is
/// deliberate, run `cargo run -p cxl-core --release --example
/// print_fingerprints -- --bless` and review the printed diff.
mod golden {
    include!("common/golden_fingerprints.rs");
}

#[test]
fn golden_replay_fingerprints_are_pinned() {
    let classic = Explorer::default();
    for &(seed, want) in golden::CLASSIC {
        let got = classic.run_seed(seed).unwrap().fingerprint;
        assert_eq!(got, want, "classic seed {seed}: {got:#018x} != {want:#018x}");
    }
    let liveness = Explorer {
        liveness: true,
        ..Explorer::default()
    };
    for &(seed, want) in golden::LIVENESS {
        let got = liveness.run_seed(seed).unwrap().fingerprint;
        assert_eq!(got, want, "liveness seed {seed}: {got:#018x} != {want:#018x}");
    }
    // The liveness profile with batched remote frees, magazines, and
    // fence coalescing enabled (PR 4). Both fingerprints differ from
    // the eager runs of the same seeds above, proving the schedules
    // actually drive the batched publish path (crashes, adoptions, and
    // steals included) — and that it stays deterministic.
    let batched = Explorer {
        liveness: true,
        config: SimConfig {
            remote_free_batch: 8,
            magazine_capacity: 4,
            coalesce_fences: true,
            ..SimConfig::default()
        },
        ..Explorer::default()
    };
    for &(seed, want) in golden::BATCHED {
        let got = batched.run_seed(seed).unwrap().fingerprint;
        assert_eq!(got, want, "batched seed {seed}: {got:#018x} != {want:#018x}");
    }
}
