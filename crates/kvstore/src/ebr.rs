//! Token-passing epoch-based reclamation.
//!
//! The paper adapts cxl-shm's non-resizable lock-free hash table "to use
//! token-passing epoch-based reclamation" (Kim, Brown, Singh, PPoPP '24)
//! so deletions can safely free entries while readers traverse. This is
//! a classic three-epoch EBR with the token-passing twist: instead of
//! every operation scanning all reservation slots to advance the epoch,
//! a *token* travels the thread ring; only the token holder attempts the
//! (amortized) advance.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared reclamation state.
#[derive(Debug)]
pub struct Ebr {
    global: AtomicU64,
    /// Per-slot reservation: 0 = quiescent, else pinned epoch + 1.
    slots: Vec<AtomicU64>,
    /// Which slot currently holds the advance token.
    token: AtomicU64,
}

impl Ebr {
    /// Creates shared state for up to `threads` participants.
    pub fn new(threads: usize) -> Self {
        Ebr {
            global: AtomicU64::new(2),
            slots: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            token: AtomicU64::new(0),
        }
    }

    /// Number of participant slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current global epoch.
    pub fn epoch(&self) -> u64 {
        self.global.load(Ordering::Acquire)
    }

    /// Pins `slot` to the current epoch; returns it. Must be called at
    /// the start of every data-structure operation.
    pub fn pin(&self, slot: usize) -> u64 {
        let e = self.global.load(Ordering::Acquire);
        self.slots[slot].store(e + 1, Ordering::SeqCst);
        e
    }

    /// Unpins `slot` (operation finished).
    pub fn unpin(&self, slot: usize) {
        self.slots[slot].store(0, Ordering::Release);
    }

    /// Token-passing epoch advance: if `slot` holds the token, check
    /// whether every pinned slot has reached the current epoch and, if
    /// so, advance it; either way pass the token on. Cheap when `slot`
    /// does not hold the token (one load).
    pub fn tick(&self, slot: usize) {
        if self.token.load(Ordering::Relaxed) != slot as u64 {
            return;
        }
        let e = self.global.load(Ordering::Acquire);
        let all_caught_up = self
            .slots
            .iter()
            .all(|s| match s.load(Ordering::Acquire) {
                0 => true,
                pinned => pinned > e,
            });
        if all_caught_up {
            let _ = self
                .global
                .compare_exchange(e, e + 1, Ordering::AcqRel, Ordering::Acquire);
        }
        self.token.store(
            ((slot + 1) % self.slots.len()) as u64,
            Ordering::Relaxed,
        );
    }

    /// Whether garbage retired at `retire_epoch` is now safe to free: two
    /// epochs must have passed, so no reader pinned at `retire_epoch`
    /// (or earlier) can still hold a reference.
    pub fn safe_to_free(&self, retire_epoch: u64) -> bool {
        self.epoch() >= retire_epoch + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_advances_when_quiescent() {
        let ebr = Ebr::new(2);
        let e0 = ebr.epoch();
        // Token starts at slot 0.
        ebr.tick(0);
        assert_eq!(ebr.epoch(), e0 + 1);
        // Token passed to slot 1; slot 0's tick is now a no-op.
        ebr.tick(0);
        assert_eq!(ebr.epoch(), e0 + 1);
        ebr.tick(1);
        assert_eq!(ebr.epoch(), e0 + 2);
    }

    #[test]
    fn pinned_old_epoch_blocks_advance() {
        let ebr = Ebr::new(2);
        let e = ebr.pin(1);
        // Advance once is still allowed (slot 1 pinned AT e, which counts
        // as caught up)...
        ebr.tick(0);
        assert_eq!(ebr.epoch(), e + 1);
        // ...but a second advance is blocked: slot 1 is now behind.
        // (The blocked tick still passes the token on, back to slot 0.)
        ebr.tick(1);
        assert_eq!(ebr.epoch(), e + 1);
        ebr.unpin(1);
        ebr.tick(0);
        assert_eq!(ebr.epoch(), e + 2);
    }

    #[test]
    fn safe_to_free_needs_two_epochs() {
        let ebr = Ebr::new(1);
        let e = ebr.epoch();
        assert!(!ebr.safe_to_free(e));
        ebr.tick(0);
        assert!(!ebr.safe_to_free(e));
        ebr.tick(0);
        assert!(ebr.safe_to_free(e));
    }

    #[test]
    fn concurrent_pin_unpin_converges() {
        use std::sync::Arc;
        let ebr = Arc::new(Ebr::new(4));
        let start = ebr.epoch();
        std::thread::scope(|s| {
            for slot in 0..4 {
                let ebr = ebr.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        ebr.pin(slot);
                        ebr.tick(slot);
                        ebr.unpin(slot);
                    }
                });
            }
        });
        assert!(ebr.epoch() > start, "epoch must make progress");
    }
}
