//! The in-memory key-value store index used by the macrobenchmarks
//! (paper §5.2.1).
//!
//! "For our index data structure, we adapt cxl-shm's non-resizable
//! lock-free hash table to support all allocators, configuring it with
//! 32M buckets. In order to support deletion, we also adapt it to use
//! token-passing epoch-based reclamation."
//!
//! The table is a fixed bucket array of lock-free (Harris-style) linked
//! lists whose entries live in pod memory, allocated through any
//! [`PodAllocThread`]. Because we compare *allocators*, the index's own
//! bucket array is identical host memory for every allocator.
//!
//! Entry layout in pod memory (all offsets 8-aligned):
//!
//! ```text
//! word 0: next entry offset | mark bit (bit 0)
//! word 1: key id (exact, used as the comparison key)
//! word 2: key_len (low 32) | value_len (high 32)
//! then:   key bytes, value bytes
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ebr;

pub use ebr::Ebr;

use baselines::{BenchError, PodAllocThread};
use cxl_core::OffsetPtr;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

const HEADER: u64 = 24;
const MARK: u64 = 1;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// The shared hash-table index.
///
/// ```
/// use baselines::{MiLike, PodAlloc};
/// use kvstore::KvStore;
///
/// let alloc = MiLike::new(64 << 20);
/// let store = KvStore::new(1024, 4);
/// let mut worker = store.worker(alloc.thread()?);
/// worker.insert(7, 8, 100)?;
/// assert_eq!(worker.get(7), Some(100));
/// assert!(worker.delete(7));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct KvStore {
    buckets: Vec<AtomicU64>,
    ebr: Ebr,
    next_slot: AtomicUsize,
    live_entries: AtomicU64,
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore")
            .field("buckets", &self.buckets.len())
            .field("live_entries", &self.live_entries.load(Ordering::Relaxed))
            .finish()
    }
}

impl KvStore {
    /// Creates a table with `buckets` buckets supporting up to
    /// `max_threads` worker threads.
    pub fn new(buckets: usize, max_threads: usize) -> Arc<Self> {
        Arc::new(KvStore {
            buckets: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            ebr: Ebr::new(max_threads),
            next_slot: AtomicUsize::new(0),
            live_entries: AtomicU64::new(0),
        })
    }

    /// Registers a worker backed by an allocator thread handle.
    ///
    /// # Panics
    ///
    /// Panics when more than `max_threads` workers register.
    pub fn worker(self: &Arc<Self>, alloc: Box<dyn PodAllocThread>) -> KvThread {
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed);
        assert!(slot < self.ebr.capacity(), "too many kv workers");
        KvThread {
            store: self.clone(),
            alloc,
            slot,
            retired: VecDeque::new(),
            ops: 0,
        }
    }

    /// Number of live entries (approximate under concurrency).
    pub fn len(&self) -> u64 {
        self.live_entries.load(Ordering::Relaxed)
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> &AtomicU64 {
        &self.buckets[(splitmix(key) % self.buckets.len() as u64) as usize]
    }
}

/// A per-thread handle to the store.
pub struct KvThread {
    store: Arc<KvStore>,
    alloc: Box<dyn PodAllocThread>,
    slot: usize,
    /// Entries awaiting epoch-safe reclamation: (retire_epoch, ptr).
    retired: VecDeque<(u64, OffsetPtr)>,
    ops: u64,
}

impl std::fmt::Debug for KvThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvThread")
            .field("slot", &self.slot)
            .field("retired", &self.retired.len())
            .finish()
    }
}

/// A decoded entry header.
#[derive(Debug, Clone, Copy)]
struct Entry {
    next: u64,
    marked: bool,
    key: u64,
    key_len: u32,
    value_len: u32,
}

impl KvThread {
    /// The underlying allocator handle.
    pub fn allocator(&mut self) -> &mut dyn PodAllocThread {
        self.alloc.as_mut()
    }

    #[inline]
    fn word(&mut self, ptr: OffsetPtr, index: u64) -> &AtomicU64 {
        let raw = self.alloc.resolve(ptr, HEADER) as *const AtomicU64;
        // SAFETY: entries are 8-aligned, at least HEADER bytes, and live
        // in the shared segment for the life of the store (retired
        // entries are freed only after two epochs).
        unsafe { &*raw.add(index as usize) }
    }

    fn read_entry(&mut self, ptr: OffsetPtr) -> Entry {
        let next_raw = self.word(ptr, 0).load(Ordering::Acquire);
        let key = self.word(ptr, 1).load(Ordering::Relaxed);
        let lens = self.word(ptr, 2).load(Ordering::Relaxed);
        Entry {
            next: next_raw & !MARK,
            marked: next_raw & MARK != 0,
            key,
            key_len: lens as u32,
            value_len: (lens >> 32) as u32,
        }
    }

    /// Inserts (or replaces) `key` with a fresh entry of the given key
    /// and value lengths; the entry's bytes are filled with a
    /// deterministic pattern.
    ///
    /// # Errors
    ///
    /// Propagates allocator errors (OOM, unsupported size).
    pub fn insert(&mut self, key: u64, key_len: u32, value_len: u32) -> Result<(), BenchError> {
        let total = HEADER + key_len as u64 + value_len as u64;
        let ptr = self.alloc.alloc(total as usize)?;
        debug_assert_eq!(ptr.offset() % 8, 0);
        // Fill the entry before publication.
        let epoch = self.store.ebr.pin(self.slot);
        self.word(ptr, 1).store(key, Ordering::Relaxed);
        self.word(ptr, 2)
            .store(key_len as u64 | (value_len as u64) << 32, Ordering::Relaxed);
        if total > HEADER {
            let body = self.alloc.resolve(ptr, total);
            // SAFETY: `body` is valid for `total` bytes (just allocated).
            unsafe {
                body.add(HEADER as usize)
                    .write_bytes(key as u8 ^ 0x5A, (total - HEADER) as usize)
            };
        }
        // Publish at the bucket head.
        let bucket = self.store.bucket_of(key) as *const AtomicU64;
        // SAFETY: bucket array outlives all workers (Arc).
        let bucket = unsafe { &*bucket };
        let mut head = bucket.load(Ordering::Acquire);
        loop {
            self.word(ptr, 0).store(head, Ordering::Relaxed);
            match bucket.compare_exchange_weak(
                head,
                ptr.offset(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => head = actual,
            }
        }
        self.store.live_entries.fetch_add(1, Ordering::Relaxed);
        // Replace semantics: logically delete the next older entry with
        // the same key, if any.
        self.delete_after(ptr, key, epoch);
        self.store.ebr.unpin(self.slot);
        self.quiesce();
        Ok(())
    }

    /// Reads `key`; returns the value length and touches the value
    /// bytes. Returns `None` if absent.
    pub fn get(&mut self, key: u64) -> Option<u32> {
        let epoch = self.store.ebr.pin(self.slot);
        let mut cursor = self.store.bucket_of(key).load(Ordering::Acquire);
        let mut result = None;
        while let Some(ptr) = OffsetPtr::decode(cursor) {
            let entry = self.read_entry(ptr);
            if !entry.marked && entry.key == key {
                // Model per-object synchronization (cxl-shm refcounts).
                self.alloc.read_barrier(ptr);
                // Touch the value.
                let total = HEADER + entry.key_len as u64 + entry.value_len as u64;
                let body = self.alloc.resolve(ptr, total);
                if entry.value_len > 0 {
                    // SAFETY: entry is valid for `total` bytes.
                    let first = unsafe {
                        *body.add(HEADER as usize + entry.key_len as usize)
                    };
                    std::hint::black_box(first);
                }
                result = Some(entry.value_len);
                break;
            }
            cursor = entry.next;
        }
        let _ = epoch;
        self.store.ebr.unpin(self.slot);
        self.quiesce();
        result
    }

    /// Deletes `key`; returns whether an entry was removed.
    pub fn delete(&mut self, key: u64) -> bool {
        let epoch = self.store.ebr.pin(self.slot);
        let deleted = self.delete_from_bucket(key, epoch);
        self.store.ebr.unpin(self.slot);
        self.quiesce();
        deleted
    }

    /// Marks and retires the first live entry matching `key` in the
    /// bucket (logical delete + best-effort unlink).
    fn delete_from_bucket(&mut self, key: u64, epoch: u64) -> bool {
        let bucket = self.store.bucket_of(key) as *const AtomicU64;
        // SAFETY: bucket array outlives workers.
        let bucket = unsafe { &*bucket };
        let mut cursor = bucket.load(Ordering::Acquire);
        let mut prev: Option<OffsetPtr> = None;
        while let Some(ptr) = OffsetPtr::decode(cursor) {
            let entry = self.read_entry(ptr);
            if !entry.marked && entry.key == key {
                if self.try_mark(ptr, entry.next) {
                    self.unlink(bucket, prev, ptr, entry.next);
                    self.retired.push_back((epoch, ptr));
                    self.store.live_entries.fetch_sub(1, Ordering::Relaxed);
                    return true;
                }
                // Lost the race; restart from the head.
                cursor = bucket.load(Ordering::Acquire);
                prev = None;
                continue;
            }
            prev = Some(ptr);
            cursor = entry.next;
        }
        false
    }

    /// Deletes the first live `key` entry strictly *after* `from` (the
    /// replace path of `insert`).
    fn delete_after(&mut self, from: OffsetPtr, key: u64, epoch: u64) {
        let mut prev = from;
        let mut cursor = self.read_entry(from).next;
        while let Some(ptr) = OffsetPtr::decode(cursor) {
            let entry = self.read_entry(ptr);
            if !entry.marked && entry.key == key {
                if self.try_mark(ptr, entry.next) {
                    // Best-effort physical unlink through prev.
                    let prev_word = self.word(prev, 0) as *const AtomicU64;
                    // SAFETY: prev entry remains valid (we hold the epoch).
                    let prev_word = unsafe { &*prev_word };
                    let _ = prev_word.compare_exchange(
                        ptr.offset(),
                        entry.next,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                    self.retired.push_back((epoch, ptr));
                    self.store.live_entries.fetch_sub(1, Ordering::Relaxed);
                }
                return;
            }
            prev = ptr;
            cursor = entry.next;
        }
    }

    /// CAS-sets the mark bit on `ptr`'s next word.
    fn try_mark(&mut self, ptr: OffsetPtr, next: u64) -> bool {
        self.word(ptr, 0)
            .compare_exchange(next, next | MARK, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Physically unlinks a marked entry (best effort).
    fn unlink(&mut self, bucket: &AtomicU64, prev: Option<OffsetPtr>, ptr: OffsetPtr, next: u64) {
        match prev {
            None => {
                let _ = bucket.compare_exchange(
                    ptr.offset(),
                    next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
            }
            Some(prev) => {
                let prev_word = self.word(prev, 0) as *const AtomicU64;
                // SAFETY: prev valid under the epoch.
                let prev_word = unsafe { &*prev_word };
                let _ = prev_word.compare_exchange(
                    ptr.offset(),
                    next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
            }
        }
    }

    /// Periodic housekeeping: pass the epoch token and free retired
    /// entries that two epochs have passed over.
    fn quiesce(&mut self) {
        self.ops += 1;
        if self.ops.is_multiple_of(64) {
            self.store.ebr.tick(self.slot);
        }
        while let Some(&(epoch, ptr)) = self.retired.front() {
            if !self.store.ebr.safe_to_free(epoch) {
                break;
            }
            self.retired.pop_front();
            let _ = self.alloc.dealloc(ptr);
        }
    }

    /// Drains the retire queue unconditionally (end of run; requires
    /// external quiescence).
    pub fn drain_retired(&mut self) {
        // Force epoch advances: every other worker must be unpinned.
        for _ in 0..self.store.ebr.capacity() * 3 + 3 {
            for s in 0..self.store.ebr.capacity() {
                self.store.ebr.tick(s);
            }
        }
        while let Some((_, ptr)) = self.retired.pop_front() {
            let _ = self.alloc.dealloc(ptr);
        }
        self.alloc.maintain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{MiLike, PodAlloc};

    fn store_with(alloc: &dyn PodAlloc) -> (Arc<KvStore>, KvThread) {
        let store = KvStore::new(1024, 8);
        let worker = store.worker(alloc.thread().unwrap());
        (store, worker)
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let alloc = MiLike::new(64 << 20);
        let (_store, mut w) = store_with(&alloc);
        assert_eq!(w.get(42), None);
        w.insert(42, 8, 100).unwrap();
        assert_eq!(w.get(42), Some(100));
        assert!(w.delete(42));
        assert_eq!(w.get(42), None);
        assert!(!w.delete(42));
    }

    #[test]
    fn replace_keeps_latest() {
        let alloc = MiLike::new(64 << 20);
        let (store, mut w) = store_with(&alloc);
        w.insert(7, 8, 10).unwrap();
        w.insert(7, 8, 20).unwrap();
        w.insert(7, 8, 30).unwrap();
        assert_eq!(w.get(7), Some(30));
        // Replacement retired the old versions: live count stays 1.
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn many_keys_coexist() {
        let alloc = MiLike::new(64 << 20);
        let (store, mut w) = store_with(&alloc);
        for key in 0..2000u64 {
            w.insert(key, 8, (key % 200) as u32).unwrap();
        }
        assert_eq!(store.len(), 2000);
        for key in 0..2000u64 {
            assert_eq!(w.get(key), Some((key % 200) as u32), "key {key}");
        }
        for key in (0..2000u64).step_by(2) {
            assert!(w.delete(key));
        }
        assert_eq!(store.len(), 1000);
        for key in 0..2000u64 {
            let expect = (key % 2 == 1).then_some((key % 200) as u32);
            assert_eq!(w.get(key), expect);
        }
    }

    #[test]
    fn retired_entries_are_freed() {
        let alloc = MiLike::new(64 << 20);
        let (_store, mut w) = store_with(&alloc);
        for _ in 0..50u64 {
            w.insert(1, 8, 960).unwrap();
        }
        w.delete(1);
        w.drain_retired();
        let used = alloc.memory_usage().data_bytes;
        // Re-running the same churn must not grow the heap: freed
        // entries are recycled.
        for _ in 0..50u64 {
            w.insert(1, 8, 960).unwrap();
        }
        w.delete(1);
        w.drain_retired();
        assert_eq!(alloc.memory_usage().data_bytes, used);
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let alloc = MiLike::new(256 << 20);
        let store = KvStore::new(4096, 8);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let mut w = store.worker(alloc.thread().unwrap());
                s.spawn(move || {
                    for i in 0..2000u64 {
                        let key = t * 1_000_000 + i;
                        w.insert(key, 8, 64).unwrap();
                        assert_eq!(w.get(key), Some(64));
                        if i % 3 == 0 {
                            assert!(w.delete(key));
                        }
                    }
                    w.drain_retired();
                });
            }
        });
        let mut w = store.worker(alloc.thread().unwrap());
        for t in 0..4u64 {
            assert_eq!(w.get(t * 1_000_000 + 1), Some(64));
            assert_eq!(w.get(t * 1_000_000), None); // deleted (i % 3 == 0)
        }
    }

    #[test]
    fn concurrent_same_key_contention() {
        let alloc = MiLike::new(256 << 20);
        let store = KvStore::new(64, 8);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let mut w = store.worker(alloc.thread().unwrap());
                s.spawn(move || {
                    for i in 0..1500u64 {
                        match i % 3 {
                            0 => {
                                let _ = w.insert(9, 8, 32);
                            }
                            1 => {
                                let _ = w.get(9);
                            }
                            _ => {
                                let _ = w.delete(9);
                            }
                        }
                    }
                    w.drain_retired();
                });
            }
        });
        // The table survives (no crash/UB); the key is either present or
        // not.
        let mut w = store.worker(alloc.thread().unwrap());
        let _ = w.get(9);
    }

    #[test]
    fn works_with_cxlalloc() {
        use baselines::CxlallocAdapter;
        use cxl_pod::{Pod, PodConfig};
        let pod = Pod::new(PodConfig {
            small_max_slabs: 1024,
            ..PodConfig::small_for_tests()
        })
        .unwrap();
        let alloc = CxlallocAdapter::new(pod, 2, cxl_core::AttachOptions::default());
        let (_store, mut w) = store_with(&alloc);
        for key in 0..500u64 {
            w.insert(key, 8, 960).unwrap();
        }
        for key in 0..500u64 {
            assert_eq!(w.get(key), Some(960));
        }
        for key in 0..500u64 {
            assert!(w.delete(key));
        }
        w.drain_retired();
    }
}
