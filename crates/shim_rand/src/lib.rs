//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the subset of `rand`'s API the workspace uses: the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast, and statistically solid for
//! workload generation and schedule exploration. It does **not** produce
//! the same streams as upstream `rand`'s StdRng (ChaCha12); nothing in
//! this workspace depends on upstream streams, only on determinism for a
//! fixed seed.

#![warn(missing_docs)]

/// A source of random `u64`s (the subset of upstream `RngCore` we need).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from all of their values (the
/// upstream `Standard` distribution).
pub trait SampleStandard {
    /// Draws a uniformly distributed value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Uniformly maps `raw` into `[lo, hi]` (inclusive).
    fn project(lo: Self, hi: Self, raw: u64) -> Self;
    /// The value immediately below `hi` (for exclusive upper bounds).
    fn prev(hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn project(lo: Self, hi: Self, raw: u64) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((raw as u128 % span) as $t)
            }
            #[inline]
            fn prev(hi: Self) -> Self {
                hi - 1
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`] (the upstream `SampleRange`).
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on an empty range");
        T::project(self.start, T::prev(self.end), rng.next_u64())
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range on an empty range");
        T::project(lo, hi, rng.next_u64())
    }
}

/// The user-facing random-value extension trait.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    #[inline]
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(10..=20);
            assert!((10..=20).contains(&x));
            let y: usize = rng.gen_range(0..7);
            assert!(y < 7);
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }
}
