//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the subset of proptest's API the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map` and `boxed`, implemented for integer
//!   ranges, tuples of strategies, and [`Just`];
//! * [`any`] for primitive types;
//! * [`collection::vec`];
//! * the [`proptest!`] and [`prop_oneof!`] macros, and the
//!   `prop_assert*` macros (plain assertions here);
//! * [`ProptestConfig`] with a `cases` knob.
//!
//! Shrinking is intentionally omitted: every case derives its RNG from
//! `base_seed ^ f(case_index)`, and a failing case prints the base seed
//! and case index so it can be replayed exactly by setting
//! `PROPTEST_SEED=<base>`. The schedule-exploration harness in
//! `cxl-core` provides real shrinking for the tests that need minimal
//! reproducers.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
}

/// Per-test configuration (subset: number of generated cases).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; unused by the shim.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Returns the base seed: `PROPTEST_SEED` from the environment, or a
/// fixed default so CI runs are reproducible.
pub fn seed_from_env() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xCB7A_11CC_0FF1_CE00)
}

/// Creates the RNG for one case of a property test.
pub fn case_rng(base: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::UniformInt + 'static> Strategy for std::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

impl<T: rand::UniformInt + 'static> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Values with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rand::Rng::gen(rng)
            }
        }
    )*};
}
impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Weighted choice among boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> OneOf<T> {
    /// Builds a weighted union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let mut roll = rand::Rng::gen_range(rng, 0..self.total);
        for (weight, strategy) in &self.arms {
            if roll < *weight {
                return strategy.sample(rng);
            }
            roll -= weight;
        }
        unreachable!("roll below total weight")
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy, L: Strategy<Value = usize>>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: Strategy<Value = usize>> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports of a property-test file.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `#[test] fn name(args in strategies)`
/// body runs `cases` times with values drawn from the strategies. On
/// failure the base seed and case index are printed for replay.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let base = $crate::seed_from_env();
                for case in 0..cfg.cases {
                    let mut __rng = $crate::case_rng(base, case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest case {case}/{} failed; replay with PROPTEST_SEED={base}",
                            cfg.cases
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Weighted (`w => strategy`) or unweighted choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// Asserts a condition inside a property (plain `assert!` in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(u8),
        Pop,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            2 => (0u8..=255).prop_map(Op::Push),
            1 => Just(Op::Pop),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn vec_model(ops in crate::collection::vec(op(), 1..50)) {
            let mut v = Vec::new();
            let mut len = 0usize;
            for op in ops {
                match op {
                    Op::Push(x) => { v.push(x); len += 1; }
                    Op::Pop => { v.pop(); len = len.saturating_sub(1); }
                }
                prop_assert_eq!(v.len(), len);
            }
        }

        #[test]
        fn ranges_inclusive(x in 5u32..=9, (lo, flag) in (1u64..4, any::<bool>())) {
            prop_assert!((5..=9).contains(&x));
            prop_assert!((1..4).contains(&lo));
            let _ = flag;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| rand::Rng::gen(&mut crate::case_rng(42, c)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| rand::Rng::gen(&mut crate::case_rng(42, c)))
            .collect();
        assert_eq!(a, b);
    }
}
