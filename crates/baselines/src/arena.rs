//! A shared bump arena over a [`Segment`], used as the backing store of
//! the baseline allocators (their moral equivalent of a big shared
//! memory file — paper §5: "each memory allocator is backed by a 64 GiB
//! shared memory file").

use cxl_pod::Segment;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A lock-free bump arena.
#[derive(Debug)]
pub struct Arena {
    segment: Arc<Segment>,
    cursor: AtomicU64,
}

impl Arena {
    /// Creates an arena of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the host cannot back the (lazily committed) segment.
    pub fn new(capacity: u64) -> Self {
        Arena {
            segment: Arc::new(Segment::zeroed(capacity).expect("arena segment")),
            // Offset 0 is reserved so OffsetPtr(0) stays null.
            cursor: AtomicU64::new(64),
        }
    }

    /// The underlying segment.
    pub fn segment(&self) -> &Arc<Segment> {
        &self.segment
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.segment.len()
    }

    /// Bytes carved so far (the data high-water mark).
    pub fn used(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed).min(self.capacity())
    }

    /// Carves `len` bytes aligned to `align`; `None` when exhausted.
    pub fn bump(&self, len: u64, align: u64) -> Option<u64> {
        debug_assert!(align.is_power_of_two());
        let mut cur = self.cursor.load(Ordering::Relaxed);
        loop {
            let start = (cur + align - 1) & !(align - 1);
            let end = start.checked_add(len)?;
            if end > self.capacity() {
                return None;
            }
            match self
                .cursor
                .compare_exchange_weak(cur, end, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Some(start),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Raw pointer to `offset` (bounds-checked).
    pub fn ptr(&self, offset: u64, len: u64) -> *mut u8 {
        self.segment.data_ptr(offset, len)
    }

    /// The `AtomicU64` cell at `offset` (for in-heap headers / links).
    pub fn cell(&self, offset: u64) -> &AtomicU64 {
        self.segment.atomic_u64(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_is_aligned_and_disjoint() {
        let arena = Arena::new(1 << 20);
        let a = arena.bump(100, 8).unwrap();
        let b = arena.bump(100, 64).unwrap();
        assert_eq!(a % 8, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100);
        assert!(arena.used() >= 264);
    }

    #[test]
    fn bump_exhausts() {
        let arena = Arena::new(4096);
        assert!(arena.bump(8192, 8).is_none());
        let mut total = 0;
        while arena.bump(512, 8).is_some() {
            total += 1;
        }
        assert!(total >= 6);
    }

    #[test]
    fn concurrent_bumps_are_disjoint() {
        let arena = Arc::new(Arena::new(1 << 20));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let arena = arena.clone();
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| arena.bump(128, 8).unwrap()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        for w in all.windows(2) {
            assert!(w[1] >= w[0] + 128, "overlap at {w:?}");
        }
    }

    #[test]
    fn offset_zero_is_never_handed_out() {
        let arena = Arena::new(4096);
        assert!(arena.bump(8, 8).unwrap() >= 64);
    }
}
