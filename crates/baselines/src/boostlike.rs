//! `BoostLike`: a Boost.Interprocess-style allocator.
//!
//! Boost's shared-memory allocators (e.g. `simple_seq_fit`,
//! `rbtree_best_fit`) guard one process-shared free list with one global
//! mutex. That is why the paper's Figure 8 shows boost "fundamentally
//! unscalable": every allocation and free from every thread serializes
//! on the same lock. The heap is fixed-size (no `mmap` growth), and
//! there is no failure tolerance — a thread crashing inside the critical
//! section would deadlock everyone (Table 1: `Fail = B`).

use crate::arena::Arena;
use crate::{AllocProps, BenchError, MemoryUsage, PodAlloc, PodAllocThread, RecoveryStrategy};
use cxl_core::OffsetPtr;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-allocation header size (stores block length, like boost's
/// `block_header`).
const HEADER: u64 = 16;

#[derive(Debug, Default)]
struct FreeList {
    /// start -> len of free chunks, coalesced eagerly.
    chunks: BTreeMap<u64, u64>,
    live: u64,
}

#[derive(Debug)]
struct Shared {
    arena: Arena,
    state: Mutex<FreeList>,
}

/// The boost-like global-mutex allocator. See the module docs.
#[derive(Debug, Clone)]
pub struct BoostLike {
    shared: Arc<Shared>,
}

impl BoostLike {
    /// Creates an instance with a fixed heap of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        let arena = Arena::new(capacity);
        let start = arena.bump(capacity - 4096, 64).expect("initial carve");
        let mut chunks = BTreeMap::new();
        chunks.insert(start, capacity - 4096 - start);
        BoostLike {
            shared: Arc::new(Shared {
                arena,
                state: Mutex::new(FreeList {
                    chunks,
                    live: 0,
                }),
            }),
        }
    }
}

impl PodAlloc for BoostLike {
    fn props(&self) -> AllocProps {
        AllocProps {
            name: "boost",
            mem: "XP",
            cross_process: true,
            mmap: false,
            fail_nonblocking: false,
            recovery_nonblocking: None,
            strategy: RecoveryStrategy::None,
        }
    }

    fn thread(&self) -> Result<Box<dyn PodAllocThread>, String> {
        Ok(Box::new(BoostThread {
            alloc: self.clone(),
        }))
    }

    fn memory_usage(&self) -> MemoryUsage {
        let state = self.shared.state.lock();
        MemoryUsage {
            data_bytes: state.live,
            metadata_bytes: state.chunks.len() as u64 * 32,
        }
    }
}

struct BoostThread {
    alloc: BoostLike,
}

impl PodAllocThread for BoostThread {
    fn alloc(&mut self, size: usize) -> Result<OffsetPtr, BenchError> {
        if size == 0 {
            return Err(BenchError::Unsupported { size });
        }
        let need = (size as u64 + HEADER + 7) & !7;
        let shared = &self.alloc.shared;
        let mut state = shared.state.lock();
        // First fit over the ordered free list (boost's simple_seq_fit).
        let found = state
            .chunks
            .iter()
            .find(|&(_, &len)| len >= need)
            .map(|(&s, &l)| (s, l));
        let (start, len) = found.ok_or(BenchError::OutOfMemory)?;
        state.chunks.remove(&start);
        if len > need {
            state.chunks.insert(start + need, len - need);
        }
        state.live += need;
        drop(state);
        // Header: block length (for free) in the first word.
        shared.arena.cell(start).store(need, std::sync::atomic::Ordering::Relaxed);
        Ok(OffsetPtr::new(start + HEADER).expect("nonzero"))
    }

    fn dealloc(&mut self, ptr: OffsetPtr) -> Result<(), BenchError> {
        let shared = &self.alloc.shared;
        let start = ptr.offset().checked_sub(HEADER).ok_or(BenchError::BadPointer)?;
        let len = shared.arena.cell(start).load(std::sync::atomic::Ordering::Relaxed);
        if len == 0 || !len.is_multiple_of(8) {
            return Err(BenchError::BadPointer);
        }
        let mut state = shared.state.lock();
        // Coalesce with predecessor and successor chunks.
        let mut new_start = start;
        let mut new_len = len;
        if let Some((&ps, &pl)) = state.chunks.range(..start).next_back() {
            if ps + pl == start {
                state.chunks.remove(&ps);
                new_start = ps;
                new_len += pl;
            }
        }
        if let Some((&ns, &nl)) = state.chunks.range(start..).next() {
            if start + len == ns {
                state.chunks.remove(&ns);
                new_len += nl;
            }
        }
        state.chunks.insert(new_start, new_len);
        state.live = state.live.saturating_sub(len);
        Ok(())
    }

    fn resolve(&mut self, ptr: OffsetPtr, len: u64) -> *mut u8 {
        self.alloc.shared.arena.ptr(ptr.offset(), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance() {
        let alloc = BoostLike::new(64 << 20);
        crate::conformance(&alloc, 1 << 20);
    }

    #[test]
    fn coalescing_avoids_fragmentation() {
        let alloc = BoostLike::new(1 << 20);
        let mut t = alloc.thread().unwrap();
        // Allocate nearly everything in small chunks; free all; then one
        // big allocation must succeed (full coalescing).
        let ptrs: Vec<_> = (0..1000).map(|_| t.alloc(512).unwrap()).collect();
        assert!(t.alloc(600 << 10).is_err());
        for p in ptrs {
            t.dealloc(p).unwrap();
        }
        let big = t.alloc(900 << 10).unwrap();
        t.dealloc(big).unwrap();
    }

    #[test]
    fn oom_on_fixed_heap() {
        let alloc = BoostLike::new(1 << 20);
        let mut t = alloc.thread().unwrap();
        assert!(matches!(t.alloc(2 << 20), Err(BenchError::OutOfMemory)));
    }

    #[test]
    fn bad_free_detected() {
        let alloc = BoostLike::new(1 << 20);
        let mut t = alloc.thread().unwrap();
        let p = t.alloc(64).unwrap();
        assert!(t.dealloc(OffsetPtr::new(p.offset() + 24).unwrap()).is_err());
        t.dealloc(p).unwrap();
    }
}
