//! `RallocLike`: ralloc (Cai et al., ISMM '20), the lock-free
//! recoverable persistent-memory allocator.
//!
//! Ralloc is the paper's strongest baseline: its heap metadata is
//! *separated* from data (making it the reference point for the HWcc
//! comparison) and its data paths are lock-free. The properties that
//! matter for the figures, reproduced here:
//!
//! * **Shared partial superblocks**: instead of per-thread ownership,
//!   partially-full superblocks are returned to a per-class global list
//!   any thread allocates from. Remote frees can therefore go straight
//!   back into circulation — which helps xmalloc at low thread counts —
//!   but the global list contends as threads grow (Figure 9: "ralloc
//!   falls off at higher thread counts").
//! * **Atomic-bitmap block claims**: allocation CAS-claims a bit in the
//!   superblock's bitmap; frees set it back. Every free must read the
//!   superblock's size class from (separated) metadata — on a pod
//!   without HWcc that read is uncachable, the Figure 12 effect.
//! * **Blocking GC recovery**: after a crash, ralloc must either run a
//!   stop-the-world garbage collection over the whole heap
//!   ([`RallocLike::recover_gc`]) or leak the dead thread's allocations
//!   (Figure 7's `ralloc-gc` vs `ralloc-leak`).

use crate::arena::Arena;
use crate::{AllocProps, BenchError, MemoryUsage, PodAlloc, PodAllocThread, RecoveryStrategy};
use cxl_core::OffsetPtr;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SB_SIZE: u64 = 64 * 1024;
const MAX_PAGED: usize = 8 * 1024;
const NUM_CLASSES: usize = 11; // 8..8192 powers of two

fn class_of(size: usize) -> usize {
    (size.max(8).next_power_of_two().trailing_zeros() - 3) as usize
}

fn class_size(class: usize) -> u64 {
    8u64 << class
}

/// Superblock metadata — kept *separate* from the data region, like
/// ralloc's metadata segment.
#[derive(Debug)]
struct Superblock {
    start: u64,
    class: usize,
    capacity: u32,
    /// Free-block bitmap (set = free), CAS-claimed.
    bitmap: Vec<AtomicU64>,
    free_count: AtomicU64,
    /// Whether the superblock is currently on the partial list
    /// (0 = no, 1 = yes) — prevents duplicate publication.
    listed: AtomicU64,
}

impl Superblock {
    fn new(start: u64, class: usize) -> Self {
        let capacity = (SB_SIZE / class_size(class)) as u32;
        let words = capacity.div_ceil(64) as usize;
        let bitmap: Vec<AtomicU64> = (0..words)
            .map(|w| {
                let bits_here = (capacity as usize - w * 64).min(64);
                AtomicU64::new(if bits_here == 64 {
                    u64::MAX
                } else {
                    (1u64 << bits_here) - 1
                })
            })
            .collect();
        Superblock {
            start,
            class,
            capacity,
            bitmap,
            free_count: AtomicU64::new(capacity as u64),
            listed: AtomicU64::new(0),
        }
    }

    /// CAS-claims any free block; returns its offset.
    fn claim(&self, arena_start_hint: usize) -> Option<u64> {
        let words = self.bitmap.len();
        for i in 0..words {
            let w = (i + arena_start_hint) % words;
            loop {
                let word = self.bitmap[w].load(Ordering::Acquire);
                if word == 0 {
                    break;
                }
                let bit = word.trailing_zeros();
                if self.bitmap[w]
                    .compare_exchange_weak(
                        word,
                        word & !(1 << bit),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    self.free_count.fetch_sub(1, Ordering::Relaxed);
                    return Some(
                        self.start + (w as u64 * 64 + bit as u64) * class_size(self.class),
                    );
                }
            }
        }
        None
    }

    /// Marks a block free; returns the previous free count.
    fn release(&self, offset: u64) -> u64 {
        let index = (offset - self.start) / class_size(self.class);
        let (w, bit) = ((index / 64) as usize, index % 64);
        let prev = self.bitmap[w].fetch_or(1 << bit, Ordering::AcqRel);
        debug_assert_eq!(prev & (1 << bit), 0, "double free");
        self.free_count.fetch_add(1, Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct Shared {
    arena: Arena,
    /// Registry: superblock lookup by `offset / SB_SIZE`.
    registry: RwLock<Vec<Option<Arc<Superblock>>>>,
    /// Per-class global lists of partially-free superblocks — the
    /// contended structure.
    partial: [Mutex<Vec<Arc<Superblock>>>; NUM_CLASSES],
    /// Stop-the-world gate: operations take it shared; GC recovery takes
    /// it exclusively (blocking recovery, Table 1).
    gc_gate: RwLock<()>,
    big_pool: Mutex<std::collections::HashMap<u64, Vec<u64>>>,
    metadata_bytes: AtomicU64,
}

/// The ralloc-like allocator. See the module docs.
#[derive(Debug, Clone)]
pub struct RallocLike {
    shared: Arc<Shared>,
}

impl RallocLike {
    /// Creates an instance backed by `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        let slots = (capacity / SB_SIZE + 1) as usize;
        RallocLike {
            shared: Arc::new(Shared {
                arena: Arena::new(capacity),
                registry: RwLock::new(vec![None; slots]),
                partial: std::array::from_fn(|_| Mutex::new(Vec::new())),
                gc_gate: RwLock::new(()),
                big_pool: Mutex::new(std::collections::HashMap::new()),
                metadata_bytes: AtomicU64::new(0),
            }),
        }
    }

    /// Stop-the-world GC recovery (`ralloc-gc` in Figure 7): blocks
    /// every allocator operation while it rebuilds all superblock
    /// bitmaps from the application's set of live pointers. Returns the
    /// number of bytes reclaimed (blocks that were allocated but not in
    /// `live`).
    pub fn recover_gc(&self, live: &[OffsetPtr]) -> u64 {
        let shared = &self.shared;
        let _world_stopped = shared.gc_gate.write();
        // Index live pointers per superblock.
        let mut live_bits: std::collections::HashMap<u64, Vec<u64>> =
            std::collections::HashMap::new();
        for p in live {
            live_bits
                .entry(p.offset() / SB_SIZE)
                .or_default()
                .push(p.offset());
        }
        let mut reclaimed = 0;
        let registry = shared.registry.read();
        for (sb_index, slot) in registry.iter().enumerate() {
            let Some(sb) = slot else {
                continue;
            };
            let block = class_size(sb.class);
            let before_free = sb.free_count.load(Ordering::Relaxed);
            // Mark everything free, then punch out the live blocks.
            for (w, word) in sb.bitmap.iter().enumerate() {
                let bits_here = (sb.capacity as usize - w * 64).min(64);
                word.store(
                    if bits_here == 64 {
                        u64::MAX
                    } else {
                        (1u64 << bits_here) - 1
                    },
                    Ordering::Relaxed,
                );
            }
            let mut live_here = 0;
            if let Some(offsets) = live_bits.get(&(sb_index as u64)) {
                for &offset in offsets {
                    let index = (offset - sb.start) / block;
                    sb.bitmap[(index / 64) as usize]
                        .fetch_and(!(1 << (index % 64)), Ordering::Relaxed);
                    live_here += 1;
                }
            }
            let after_free = sb.capacity as u64 - live_here;
            sb.free_count.store(after_free, Ordering::Relaxed);
            reclaimed += (after_free.saturating_sub(before_free)) * block;
        }
        reclaimed
    }

    /// Total bytes currently claimed in superblocks (live + leaked).
    pub fn allocated_bytes(&self) -> u64 {
        let registry = self.shared.registry.read();
        registry
            .iter()
            .flatten()
            .map(|sb| {
                (sb.capacity as u64 - sb.free_count.load(Ordering::Relaxed))
                    * class_size(sb.class)
            })
            .sum()
    }

    /// Bytes currently leaked if recovery is skipped (`ralloc-leak`):
    /// allocated blocks minus the application's live set.
    pub fn leaked_bytes(&self, live: &[OffsetPtr]) -> u64 {
        let live_count = live.len() as u64;
        let registry = self.shared.registry.read();
        let mut allocated = 0u64;
        let mut live_sizes = 0u64;
        for slot in registry.iter().flatten() {
            let used = slot.capacity as u64 - slot.free_count.load(Ordering::Relaxed);
            allocated += used * class_size(slot.class);
        }
        for p in live {
            if let Some(sb) = registry
                .get((p.offset() / SB_SIZE) as usize)
                .and_then(|s| s.as_ref())
            {
                live_sizes += class_size(sb.class);
            }
        }
        let _ = live_count;
        allocated.saturating_sub(live_sizes)
    }
}

impl PodAlloc for RallocLike {
    fn props(&self) -> AllocProps {
        AllocProps {
            name: "ralloc",
            mem: "PM",
            cross_process: false,
            mmap: false,
            fail_nonblocking: true,
            recovery_nonblocking: Some(false),
            strategy: RecoveryStrategy::App,
        }
    }

    fn thread(&self) -> Result<Box<dyn PodAllocThread>, String> {
        Ok(Box::new(RallocThread {
            alloc: self.clone(),
            current: std::array::from_fn(|_| None),
            hint: 0,
        }))
    }

    fn memory_usage(&self) -> MemoryUsage {
        MemoryUsage {
            data_bytes: self.shared.arena.used(),
            metadata_bytes: self.shared.metadata_bytes.load(Ordering::Relaxed),
        }
    }
}

struct RallocThread {
    alloc: RallocLike,
    current: [Option<Arc<Superblock>>; NUM_CLASSES],
    hint: usize,
}

impl PodAllocThread for RallocThread {
    fn alloc(&mut self, size: usize) -> Result<OffsetPtr, BenchError> {
        if size == 0 {
            return Err(BenchError::Unsupported { size });
        }
        let shared = &self.alloc.shared;
        let _gate = shared.gc_gate.read();
        cxl_core::crash::point("ralloc::alloc");
        if size > MAX_PAGED {
            let rounded = (size as u64).next_power_of_two();
            let pooled = shared.big_pool.lock().get_mut(&rounded).and_then(Vec::pop);
            let offset = match pooled {
                Some(offset) => offset,
                None => {
                    let raw = shared
                        .arena
                        .bump(rounded + 64, 64)
                        .ok_or(BenchError::OutOfMemory)?;
                    shared.arena.cell(raw).store(rounded, Ordering::Relaxed);
                    raw + 64
                }
            };
            return Ok(OffsetPtr::new(offset).expect("nonzero"));
        }
        let class = class_of(size);
        loop {
            if let Some(sb) = &self.current[class] {
                if let Some(offset) = sb.claim(self.hint) {
                    self.hint = self.hint.wrapping_add(1);
                    // A crash here loses the claimed block: without GC it
                    // leaks (the Figure 7 ralloc-leak case).
                    cxl_core::crash::point("ralloc::alloc::after_claim");
                    return Ok(OffsetPtr::new(offset).expect("nonzero"));
                }
                // Exhausted: drop it (it returns via the partial list
                // when a free arrives).
                self.current[class] = None;
            }
            // Pop a shared partial superblock (the contended lock).
            let popped = shared.partial[class].lock().pop();
            match popped {
                Some(sb) => {
                    sb.listed.store(0, Ordering::Release);
                    self.current[class] = Some(sb);
                }
                None => {
                    let start = shared
                        .arena
                        .bump(SB_SIZE, SB_SIZE)
                        .ok_or(BenchError::OutOfMemory)?;
                    let sb = Arc::new(Superblock::new(start, class));
                    shared.metadata_bytes.fetch_add(
                        (std::mem::size_of::<Superblock>() + sb.bitmap.len() * 8) as u64,
                        Ordering::Relaxed,
                    );
                    shared.registry.write()[(start / SB_SIZE) as usize] = Some(sb.clone());
                    self.current[class] = Some(sb);
                }
            }
        }
    }

    fn dealloc(&mut self, ptr: OffsetPtr) -> Result<(), BenchError> {
        let shared = &self.alloc.shared;
        let _gate = shared.gc_gate.read();
        let offset = ptr.offset();
        let sb = shared.registry.read()[(offset / SB_SIZE) as usize].clone();
        match sb {
            Some(sb) => {
                // Reading the size class from separated metadata — the
                // access that must go to uncachable memory in -mcas mode.
                let prev_free = sb.release(offset);
                // A superblock gaining its first free block goes (back)
                // on the shared partial list.
                if prev_free == 0
                    && sb
                        .listed
                        .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    shared.partial[sb.class].lock().push(sb.clone());
                }
                Ok(())
            }
            None => {
                let rounded = shared.arena.cell(offset - 64).load(Ordering::Relaxed);
                if rounded == 0 || !rounded.is_power_of_two() {
                    return Err(BenchError::BadPointer);
                }
                shared.big_pool.lock().entry(rounded).or_default().push(offset);
                Ok(())
            }
        }
    }

    fn resolve(&mut self, ptr: OffsetPtr, len: u64) -> *mut u8 {
        self.alloc.shared.arena.ptr(ptr.offset(), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance() {
        let alloc = RallocLike::new(64 << 20);
        crate::conformance(&alloc, 1 << 20);
    }

    #[test]
    fn partial_superblocks_are_shared() {
        let alloc = RallocLike::new(16 << 20);
        let mut a = alloc.thread().unwrap();
        let mut b = alloc.thread().unwrap();
        // a fills a superblock (8192 blocks of 8 B), b frees one block:
        // the superblock lands on the shared partial list and a *new
        // thread* allocates from it without carving memory.
        let ptrs: Vec<_> = (0..8192).map(|_| a.alloc(8).unwrap()).collect();
        b.dealloc(ptrs[17]).unwrap();
        let used = alloc.memory_usage().data_bytes;
        let mut c = alloc.thread().unwrap();
        let p = c.alloc(8).unwrap();
        assert_eq!(p, ptrs[17], "block must come from the shared partial superblock");
        assert_eq!(alloc.memory_usage().data_bytes, used);
        for (i, p) in ptrs.into_iter().enumerate() {
            if i != 17 {
                a.dealloc(p).unwrap();
            }
        }
        c.dealloc(p).unwrap();
    }

    #[test]
    fn gc_recovery_reclaims_dead_allocations() {
        let alloc = RallocLike::new(16 << 20);
        let mut t = alloc.thread().unwrap();
        let live: Vec<_> = (0..10).map(|_| t.alloc(64).unwrap()).collect();
        // A "crashed thread" allocated these and died:
        let _dead: Vec<_> = (0..100).map(|_| t.alloc(64).unwrap()).collect();
        let reclaimed = alloc.recover_gc(&live);
        assert_eq!(reclaimed, 100 * 64);
        // Live blocks survive; their slots are still claimed.
        let p = t.alloc(64).unwrap();
        assert!(!live.contains(&p));
        t.dealloc(p).unwrap();
    }

    #[test]
    fn leak_accounting() {
        let alloc = RallocLike::new(16 << 20);
        let mut t = alloc.thread().unwrap();
        let live: Vec<_> = (0..5).map(|_| t.alloc(128).unwrap()).collect();
        let _dead: Vec<_> = (0..20).map(|_| t.alloc(128).unwrap()).collect();
        assert_eq!(alloc.leaked_bytes(&live), 20 * 128);
    }

    #[test]
    fn gc_blocks_concurrent_operations() {
        use std::sync::atomic::AtomicBool;
        let alloc = Arc::new(RallocLike::new(16 << 20));
        // Pre-populate so GC has work.
        let mut t = alloc.thread().unwrap();
        let live: Vec<_> = (0..1000).map(|_| t.alloc(64).unwrap()).collect();
        let in_gc = Arc::new(AtomicBool::new(false));

        // Hold the write gate from this thread and verify an allocation
        // on another thread cannot proceed until released.
        let gate = alloc.shared.gc_gate.write();
        in_gc.store(true, Ordering::SeqCst);
        let alloc2 = alloc.clone();
        let in_gc2 = in_gc.clone();
        let h = std::thread::spawn(move || {
            let mut t = alloc2.thread().unwrap();
            let before = in_gc2.load(Ordering::SeqCst);
            let _p = t.alloc(64).unwrap();
            // By the time alloc returned, the gate must have dropped.
            (before, in_gc2.load(Ordering::SeqCst))
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        in_gc.store(false, Ordering::SeqCst);
        drop(gate);
        let (before, after) = h.join().unwrap();
        assert!(before, "helper started during GC");
        assert!(!after, "helper's alloc completed only after GC released");
        drop(live);
    }
}
