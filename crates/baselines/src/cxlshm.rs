//! `CxlShmLike`: cxl-shm (Zhang et al., SOSP '23), the prior
//! partial-failure-tolerant CXL memory manager.
//!
//! The paper (§6) identifies the design choices that cxlalloc rejects,
//! all reproduced here:
//!
//! * a **24-byte inline header** on every allocation, 8 bytes of which
//!   is a reference count that must live in HWcc memory — scattered
//!   through the heap, this inflates HWcc usage and makes small-object
//!   workloads (MC-15, MC-31) pay noticeable per-object overhead;
//! * **reference counting** for recovery: every retain/release is an
//!   atomic RMW on the object's header cacheline, which creates
//!   contention on hot objects even for read-mostly workloads (YCSB-A/D
//!   in Figure 8) — exposed through
//!   [`PodAllocThread::read_barrier`](crate::PodAllocThread::read_barrier);
//! * a **fixed-size heap** with **no allocation larger than 1 KiB** and
//!   no memory-mapping updates (only trivial pointer consistency) — the
//!   paper notes it simply crashes on MC-12 and MC-37.

use crate::arena::Arena;
use crate::{AllocProps, BenchError, MemoryUsage, PodAlloc, PodAllocThread, RecoveryStrategy};
use cxl_core::OffsetPtr;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Inline header size (the paper: "it embeds a 24B header into each
/// allocation to support reference counting, 8B of which requires
/// HWcc").
pub const HEADER: u64 = 24;
/// Maximum supported allocation (cxl-shm "does not support allocations
/// larger than 1KiB").
pub const MAX_ALLOC: usize = 1024;

const NUM_CLASSES: usize = 8; // 8, 16, ..., 1024

fn class_of(size: usize) -> usize {
    (size.max(8).next_power_of_two().trailing_zeros() - 3) as usize
}

fn class_size(class: usize) -> u64 {
    8u64 << class
}

#[derive(Debug)]
struct Shared {
    arena: Arena,
    /// Global free stacks per class (threads refill caches in batches).
    global_free: [Mutex<Vec<u64>>; NUM_CLASSES],
    live_bytes: AtomicU64,
    header_bytes: AtomicU64,
}

/// The cxl-shm-like allocator. See the module docs.
#[derive(Debug, Clone)]
pub struct CxlShmLike {
    shared: Arc<Shared>,
}

impl CxlShmLike {
    /// Creates an instance with a fixed heap of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        CxlShmLike {
            shared: Arc::new(Shared {
                arena: Arena::new(capacity),
                global_free: std::array::from_fn(|_| Mutex::new(Vec::new())),
                live_bytes: AtomicU64::new(0),
                header_bytes: AtomicU64::new(0),
            }),
        }
    }
}

impl PodAlloc for CxlShmLike {
    fn props(&self) -> AllocProps {
        AllocProps {
            name: "cxl-shm",
            mem: "CXL",
            cross_process: true,
            mmap: false,
            fail_nonblocking: true,
            recovery_nonblocking: Some(true),
            strategy: RecoveryStrategy::Gc,
        }
    }

    fn thread(&self) -> Result<Box<dyn PodAllocThread>, String> {
        Ok(Box::new(CxlShmThread {
            alloc: self.clone(),
            cache: std::array::from_fn(|_| Vec::new()),
        }))
    }

    fn memory_usage(&self) -> MemoryUsage {
        MemoryUsage {
            data_bytes: self.shared.live_bytes.load(Ordering::Relaxed),
            metadata_bytes: self.shared.header_bytes.load(Ordering::Relaxed),
        }
    }
}

struct CxlShmThread {
    alloc: CxlShmLike,
    cache: [Vec<u64>; NUM_CLASSES],
}

impl CxlShmThread {
    fn refcount_cell(&self, block: u64) -> &AtomicU64 {
        self.alloc.shared.arena.cell(block)
    }
}

impl PodAllocThread for CxlShmThread {
    fn alloc(&mut self, size: usize) -> Result<OffsetPtr, BenchError> {
        if size == 0 || size > MAX_ALLOC {
            // The real system crashes; the harness treats Unsupported as
            // that crash.
            return Err(BenchError::Unsupported { size });
        }
        let class = class_of(size);
        let shared = &self.alloc.shared;
        let block = match self.cache[class].pop() {
            Some(block) => block,
            None => {
                // Batch refill from the global stack, else carve.
                let mut global = shared.global_free[class].lock();
                if global.is_empty() {
                    drop(global);
                    shared
                        .arena
                        .bump(HEADER + class_size(class), 8)
                        .ok_or(BenchError::OutOfMemory)?
                } else {
                    let take = (global.len() / 2).clamp(1, 8);
                    let at = global.len() - take;
                    self.cache[class].extend(global.drain(at..));
                    drop(global);
                    self.cache[class].pop().expect("just refilled")
                }
            }
        };
        // 24-byte header: refcount (HWcc), class, reserved.
        let arena = &shared.arena;
        arena.cell(block).store(1, Ordering::Release); // refcount
        arena.cell(block + 8).store(class as u64, Ordering::Relaxed);
        arena.cell(block + 16).store(0, Ordering::Relaxed);
        shared
            .live_bytes
            .fetch_add(class_size(class), Ordering::Relaxed);
        shared.header_bytes.fetch_add(HEADER, Ordering::Relaxed);
        Ok(OffsetPtr::new(block + HEADER).expect("nonzero"))
    }

    fn dealloc(&mut self, ptr: OffsetPtr) -> Result<(), BenchError> {
        let block = ptr.offset().checked_sub(HEADER).ok_or(BenchError::BadPointer)?;
        let shared = &self.alloc.shared;
        let class = shared.arena.cell(block + 8).load(Ordering::Relaxed) as usize;
        if class >= NUM_CLASSES {
            return Err(BenchError::BadPointer);
        }
        // Release the object's reference; the allocation dies at zero.
        let prev = self.refcount_cell(block).fetch_sub(1, Ordering::AcqRel);
        if prev == 0 {
            return Err(BenchError::BadPointer); // double free
        }
        if prev == 1 {
            self.cache[class].push(block);
            if self.cache[class].len() > 16 {
                let at = self.cache[class].len() - 8;
                let spill: Vec<u64> = self.cache[class].drain(at..).collect();
                shared.global_free[class].lock().extend(spill);
            }
            shared
                .live_bytes
                .fetch_sub(class_size(class), Ordering::Relaxed);
            shared.header_bytes.fetch_sub(HEADER, Ordering::Relaxed);
        }
        Ok(())
    }

    fn resolve(&mut self, ptr: OffsetPtr, len: u64) -> *mut u8 {
        self.alloc.shared.arena.ptr(ptr.offset(), len)
    }

    fn read_barrier(&mut self, ptr: OffsetPtr) {
        // Reference-counted reads: retain + release, two atomic RMWs on
        // the object's header line. On skewed workloads every reader
        // hammers the same hot cacheline — the Figure 8 YCSB-A/D effect.
        if let Some(block) = ptr.offset().checked_sub(HEADER) {
            let cell = self.refcount_cell(block);
            cell.fetch_add(1, Ordering::AcqRel);
            cell.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance() {
        let alloc = CxlShmLike::new(64 << 20);
        crate::conformance(&alloc, MAX_ALLOC);
    }

    #[test]
    fn rejects_large_allocations() {
        let alloc = CxlShmLike::new(16 << 20);
        let mut t = alloc.thread().unwrap();
        assert!(matches!(
            t.alloc(1025),
            Err(BenchError::Unsupported { size: 1025 })
        ));
        assert!(t.alloc(1024).is_ok());
    }

    #[test]
    fn header_overhead_is_visible() {
        // MC-15/MC-31 effect: tiny values pay 24 B of header each.
        let alloc = CxlShmLike::new(16 << 20);
        let mut t = alloc.thread().unwrap();
        let ptrs: Vec<_> = (0..1000).map(|_| t.alloc(8).unwrap()).collect();
        let usage = alloc.memory_usage();
        assert_eq!(usage.metadata_bytes, 24_000);
        assert_eq!(usage.data_bytes, 8_000);
        for p in ptrs {
            t.dealloc(p).unwrap();
        }
        assert_eq!(alloc.memory_usage().total(), 0);
    }

    #[test]
    fn double_free_detected_by_refcount() {
        let alloc = CxlShmLike::new(16 << 20);
        let mut t = alloc.thread().unwrap();
        let p = t.alloc(64).unwrap();
        t.dealloc(p).unwrap();
        assert!(matches!(t.dealloc(p), Err(BenchError::BadPointer)));
    }

    #[test]
    fn read_barrier_leaves_refcount_intact() {
        let alloc = CxlShmLike::new(16 << 20);
        let mut t = alloc.thread().unwrap();
        let p = t.alloc(64).unwrap();
        for _ in 0..100 {
            t.read_barrier(p);
        }
        t.dealloc(p).unwrap();
        // Refcount balanced: reallocation works.
        assert!(t.alloc(64).is_ok());
    }
}
