//! `LightningLike`: the internal allocator of Lightning (Zhuo et al.,
//! VLDB '21), an in-memory object store.
//!
//! Lightning guards its shared heap with a global lock and — because its
//! crash recovery garbage-collects by scanning — keeps "a large array to
//! track each individual allocation", which the paper notes costs an
//! order of magnitude more memory (its PSS is omitted from Figure 8 for
//! scale). We reproduce both properties: segregated free lists behind a
//! global mutex plus a preallocated per-allocation tracking table.

use crate::arena::Arena;
use crate::{AllocProps, BenchError, MemoryUsage, PodAlloc, PodAllocThread, RecoveryStrategy};
use cxl_core::OffsetPtr;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Tracking-table entry: (offset, size, owner token) — 24 bytes, one per
/// allocation ever made, preallocated like Lightning's object table.
#[derive(Debug, Clone, Copy, Default)]
struct TrackEntry {
    offset: u64,
    size: u64,
    live: bool,
}

#[derive(Debug)]
struct State {
    /// Power-of-two segregated free lists: class -> block offsets.
    free: HashMap<u32, Vec<u64>>,
    /// The per-allocation tracking table.
    table: Vec<TrackEntry>,
    /// offset -> table index for live allocations.
    index: HashMap<u64, usize>,
    /// Recycled table slots.
    free_slots: Vec<usize>,
    live_bytes: u64,
}

#[derive(Debug)]
struct Shared {
    arena: Arena,
    state: Mutex<State>,
    table_capacity: usize,
}

/// The lightning-like allocator. See the module docs.
#[derive(Debug, Clone)]
pub struct LightningLike {
    shared: Arc<Shared>,
}

impl LightningLike {
    /// Creates an instance with `capacity` heap bytes and a tracking
    /// table of `table_capacity` entries (preallocated).
    pub fn new(capacity: u64, table_capacity: usize) -> Self {
        LightningLike {
            shared: Arc::new(Shared {
                arena: Arena::new(capacity),
                state: Mutex::new(State {
                    free: HashMap::new(),
                    table: vec![TrackEntry::default(); table_capacity],
                    index: HashMap::new(),
                    free_slots: (0..table_capacity).rev().collect(),
                    live_bytes: 0,
                }),
                table_capacity,
            }),
        }
    }
}

impl PodAlloc for LightningLike {
    fn props(&self) -> AllocProps {
        AllocProps {
            name: "lightning",
            mem: "XP",
            cross_process: true,
            mmap: false,
            fail_nonblocking: false,
            recovery_nonblocking: Some(false),
            strategy: RecoveryStrategy::Gc,
        }
    }

    fn thread(&self) -> Result<Box<dyn PodAllocThread>, String> {
        Ok(Box::new(LightningThread {
            alloc: self.clone(),
        }))
    }

    fn memory_usage(&self) -> MemoryUsage {
        let state = self.shared.state.lock();
        MemoryUsage {
            data_bytes: state.live_bytes,
            // The tracking table is the dominant overhead: preallocated
            // for every potential allocation (24 B/entry) plus the index.
            metadata_bytes: self.shared.table_capacity as u64 * 24
                + state.index.len() as u64 * 16,
        }
    }
}

struct LightningThread {
    alloc: LightningLike,
}

impl PodAllocThread for LightningThread {
    fn alloc(&mut self, size: usize) -> Result<OffsetPtr, BenchError> {
        if size == 0 {
            return Err(BenchError::Unsupported { size });
        }
        let rounded = (size.max(8) as u64).next_power_of_two();
        let class = rounded.trailing_zeros();
        let shared = &self.alloc.shared;
        let mut state = shared.state.lock();
        let offset = match state.free.get_mut(&class).and_then(Vec::pop) {
            Some(offset) => offset,
            None => shared
                .arena
                .bump(rounded, rounded.min(4096))
                .ok_or(BenchError::OutOfMemory)?,
        };
        let slot = state.free_slots.pop().ok_or(BenchError::OutOfMemory)?;
        state.table[slot] = TrackEntry {
            offset,
            size: rounded,
            live: true,
        };
        state.index.insert(offset, slot);
        state.live_bytes += rounded;
        Ok(OffsetPtr::new(offset).expect("nonzero"))
    }

    fn dealloc(&mut self, ptr: OffsetPtr) -> Result<(), BenchError> {
        let shared = &self.alloc.shared;
        let mut state = shared.state.lock();
        let slot = *state.index.get(&ptr.offset()).ok_or(BenchError::BadPointer)?;
        let entry = state.table[slot];
        debug_assert!(entry.live);
        state.index.remove(&ptr.offset());
        state.table[slot].live = false;
        state.free_slots.push(slot);
        state
            .free
            .entry(entry.size.trailing_zeros())
            .or_default()
            .push(entry.offset);
        state.live_bytes = state.live_bytes.saturating_sub(entry.size);
        Ok(())
    }

    fn resolve(&mut self, ptr: OffsetPtr, len: u64) -> *mut u8 {
        self.alloc.shared.arena.ptr(ptr.offset(), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance() {
        let alloc = LightningLike::new(64 << 20, 1 << 16);
        crate::conformance(&alloc, 1 << 20);
    }

    #[test]
    fn tracking_table_dominates_memory() {
        // The §5.2.1 observation: Lightning "requires an order of
        // magnitude more memory" because of the tracking array.
        let alloc = LightningLike::new(64 << 20, 1 << 20);
        let mut t = alloc.thread().unwrap();
        let ptrs: Vec<_> = (0..100).map(|_| t.alloc(64).unwrap()).collect();
        let usage = alloc.memory_usage();
        assert!(usage.metadata_bytes > usage.data_bytes * 10);
        for p in ptrs {
            t.dealloc(p).unwrap();
        }
    }

    #[test]
    fn table_exhaustion_is_oom() {
        let alloc = LightningLike::new(64 << 20, 4);
        let mut t = alloc.thread().unwrap();
        let ptrs: Vec<_> = (0..4).map(|_| t.alloc(64).unwrap()).collect();
        assert!(matches!(t.alloc(64), Err(BenchError::OutOfMemory)));
        for p in ptrs {
            t.dealloc(p).unwrap();
        }
        assert!(t.alloc(64).is_ok());
    }

    #[test]
    fn double_free_detected() {
        let alloc = LightningLike::new(16 << 20, 64);
        let mut t = alloc.thread().unwrap();
        let p = t.alloc(64).unwrap();
        t.dealloc(p).unwrap();
        assert!(matches!(t.dealloc(p), Err(BenchError::BadPointer)));
    }
}
