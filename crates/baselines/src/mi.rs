//! `MiLike`: a mimalloc-style allocator (Leijen et al., "free list
//! sharding in action").
//!
//! The paper uses mimalloc as "an indicator of maximum allocator
//! performance" — it is single-process only, with no pointer
//! consistency, no failure tolerance, and no HWcc awareness, but its
//! fast path is extremely short. This reimplementation keeps the parts
//! that make it fast:
//!
//! * per-thread pages per size class;
//! * an **intrusive** local free list (the pointer to the next free
//!   block is stored in the free block itself): allocation is one load
//!   and one store;
//! * a separate *xthread* (remote) free list per page, updated with CAS,
//!   collected in batch by the owner — remote frees never touch the
//!   local fast path.

use crate::arena::Arena;
use crate::{AllocProps, BenchError, MemoryUsage, PodAlloc, PodAllocThread, RecoveryStrategy};
use cxl_core::OffsetPtr;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

const PAGE_SIZE: u64 = 64 * 1024;
/// Sizes above this get a dedicated allocation instead of a shared page.
const MAX_PAGED: usize = 8 * 1024;
const NUM_CLASSES: usize = 11; // 8, 16, ..., 8192 (powers of two)

fn class_of(size: usize) -> usize {
    let size = size.max(8);
    (size.next_power_of_two().trailing_zeros() - 3) as usize
}

fn class_size(class: usize) -> usize {
    8 << class
}

/// Shared per-page metadata (off-heap, like mimalloc's page descriptor).
#[derive(Debug)]
struct Page {
    start: u64,
    /// Size class (kept for diagnostics / Debug output).
    #[allow(dead_code)]
    class: usize,
    /// Owning thread token (never changes — mimalloc pages go back
    /// through the owner).
    owner: u32,
    /// Intrusive local free list head (block offset, 0 = empty).
    /// Owner-only access.
    local_free: AtomicU64,
    /// Intrusive remote free list head, CAS-updated by any thread.
    xthread_free: AtomicU64,
    /// Live blocks.
    used: AtomicU32,
}

#[derive(Debug)]
struct Shared {
    arena: Arena,
    /// Page registry indexed by `offset / PAGE_SIZE`.
    pages: RwLock<Vec<Option<Arc<Page>>>>,
    next_token: AtomicU32,
    /// Reuse pool for dedicated (large) allocations, by size class of
    /// their rounded size.
    big_pool: parking_lot::Mutex<std::collections::HashMap<u64, Vec<u64>>>,
    metadata_bytes: AtomicU64,
}

/// The mimalloc-like allocator. See the module docs.
#[derive(Debug, Clone)]
pub struct MiLike {
    shared: Arc<Shared>,
}

impl MiLike {
    /// Creates an instance backed by `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        let slots = (capacity / PAGE_SIZE + 1) as usize;
        MiLike {
            shared: Arc::new(Shared {
                arena: Arena::new(capacity),
                pages: RwLock::new(vec![None; slots]),
                next_token: AtomicU32::new(1),
                big_pool: parking_lot::Mutex::new(std::collections::HashMap::new()),
                metadata_bytes: AtomicU64::new(0),
            }),
        }
    }

    fn page_of(&self, offset: u64) -> Option<Arc<Page>> {
        self.shared.pages.read()[(offset / PAGE_SIZE) as usize].clone()
    }
}

impl PodAlloc for MiLike {
    fn props(&self) -> AllocProps {
        AllocProps {
            name: "mimalloc",
            mem: "M",
            cross_process: false,
            mmap: true,
            fail_nonblocking: true,
            recovery_nonblocking: None,
            strategy: RecoveryStrategy::None,
        }
    }

    fn thread(&self) -> Result<Box<dyn PodAllocThread>, String> {
        let token = self.shared.next_token.fetch_add(1, Ordering::Relaxed);
        Ok(Box::new(MiThread {
            alloc: self.clone(),
            token,
            current: std::array::from_fn(|_| None),
            retired: std::array::from_fn(|_| Vec::new()),
        }))
    }

    fn memory_usage(&self) -> MemoryUsage {
        MemoryUsage {
            data_bytes: self.shared.arena.used(),
            metadata_bytes: self.shared.metadata_bytes.load(Ordering::Relaxed),
        }
    }
}

struct CurrentPage {
    page: Arc<Page>,
    bump_next: u64,
    bump_end: u64,
}

struct MiThread {
    alloc: MiLike,
    token: u32,
    current: [Option<CurrentPage>; NUM_CLASSES],
    retired: [Vec<Arc<Page>>; NUM_CLASSES],
}

impl MiThread {
    /// Pops from the page's intrusive local free list (owner only).
    fn pop_local(arena: &Arena, page: &Page) -> Option<u64> {
        let head = page.local_free.load(Ordering::Relaxed);
        if head == 0 {
            return None;
        }
        let next = arena.cell(head).load(Ordering::Relaxed);
        page.local_free.store(next, Ordering::Relaxed);
        Some(head)
    }

    /// Takes the whole xthread list (one atomic swap) and makes it the
    /// local list.
    fn collect_xthread(&self, page: &Page) -> bool {
        let head = page.xthread_free.swap(0, Ordering::AcqRel);
        if head == 0 {
            return false;
        }
        debug_assert_eq!(page.local_free.load(Ordering::Relaxed), 0);
        page.local_free.store(head, Ordering::Relaxed);
        true
    }

    fn fresh_page(&mut self, class: usize) -> Result<CurrentPage, BenchError> {
        let shared = &self.alloc.shared;
        let start = shared
            .arena
            .bump(PAGE_SIZE, PAGE_SIZE)
            .ok_or(BenchError::OutOfMemory)?;
        let page = Arc::new(Page {
            start,
            class,
            owner: self.token,
            local_free: AtomicU64::new(0),
            xthread_free: AtomicU64::new(0),
            used: AtomicU32::new(0),
        });
        shared.pages.write()[(start / PAGE_SIZE) as usize] = Some(page.clone());
        shared
            .metadata_bytes
            .fetch_add(std::mem::size_of::<Page>() as u64, Ordering::Relaxed);
        Ok(CurrentPage {
            page,
            bump_next: start,
            bump_end: start + PAGE_SIZE,
        })
    }

    fn alloc_small(&mut self, class: usize) -> Result<u64, BenchError> {
        let block = class_size(class) as u64;
        loop {
            if let Some(cur) = &mut self.current[class] {
                let arena = &self.alloc.shared.arena;
                // Fast path 1: intrusive local free list.
                if let Some(offset) = Self::pop_local(arena, &cur.page) {
                    cur.page.used.fetch_add(1, Ordering::Relaxed);
                    return Ok(offset);
                }
                // Fast path 2: bump within the page.
                if cur.bump_next + block <= cur.bump_end {
                    let offset = cur.bump_next;
                    cur.bump_next += block;
                    cur.page.used.fetch_add(1, Ordering::Relaxed);
                    return Ok(offset);
                }
                // Collect remote frees.
                if self.collect_xthread(&self.current[class].as_ref().unwrap().page) {
                    continue;
                }
                // Page exhausted: retire it.
                let cur = self.current[class].take().unwrap();
                self.retired[class].push(cur.page);
            }
            // Try to revive a retired page that accumulated frees.
            let mut revived = None;
            for (i, page) in self.retired[class].iter().enumerate() {
                if page.local_free.load(Ordering::Relaxed) != 0
                    || page.xthread_free.load(Ordering::Relaxed) != 0
                {
                    revived = Some(i);
                    break;
                }
            }
            if let Some(i) = revived {
                let page = self.retired[class].swap_remove(i);
                self.collect_xthread(&page);
                let end = page.start + PAGE_SIZE;
                self.current[class] = Some(CurrentPage {
                    page,
                    bump_next: end, // bump space already consumed
                    bump_end: end,
                });
                continue;
            }
            self.current[class] = Some(self.fresh_page(class)?);
        }
    }
}

impl PodAllocThread for MiThread {
    fn alloc(&mut self, size: usize) -> Result<OffsetPtr, BenchError> {
        if size == 0 {
            return Err(BenchError::Unsupported { size });
        }
        let offset = if size <= MAX_PAGED {
            self.alloc_small(class_of(size))?
        } else {
            // Dedicated allocation with pooled reuse.
            let rounded = (size as u64).next_power_of_two();
            let pooled = self.alloc.shared.big_pool.lock().get_mut(&rounded).and_then(Vec::pop);
            match pooled {
                Some(offset) => offset,
                None => self
                    .alloc
                    .shared
                    .arena
                    .bump(rounded + 64, 64)
                    .map(|raw| {
                        // Header stores the rounded size for dealloc.
                        self.alloc.shared.arena.cell(raw).store(rounded, Ordering::Relaxed);
                        raw + 64
                    })
                    .ok_or(BenchError::OutOfMemory)?,
            }
        };
        Ok(OffsetPtr::new(offset).expect("nonzero"))
    }

    fn dealloc(&mut self, ptr: OffsetPtr) -> Result<(), BenchError> {
        let offset = ptr.offset();
        if let Some(page) = self.alloc.page_of(offset) {
            let arena = &self.alloc.shared.arena;
            if page.owner == self.token {
                // Local free: intrusive push, no synchronization.
                let head = page.local_free.load(Ordering::Relaxed);
                arena.cell(offset).store(head, Ordering::Relaxed);
                page.local_free.store(offset, Ordering::Relaxed);
            } else {
                // Remote free: CAS push onto the xthread list.
                let cell = arena.cell(offset);
                let mut head = page.xthread_free.load(Ordering::Relaxed);
                loop {
                    cell.store(head, Ordering::Relaxed);
                    match page.xthread_free.compare_exchange_weak(
                        head,
                        offset,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => break,
                        Err(actual) => head = actual,
                    }
                }
            }
            page.used.fetch_sub(1, Ordering::Relaxed);
            Ok(())
        } else {
            // Dedicated allocation: header precedes the block.
            let rounded = self.alloc.shared.arena.cell(offset - 64).load(Ordering::Relaxed);
            if rounded == 0 || !rounded.is_power_of_two() {
                return Err(BenchError::BadPointer);
            }
            self.alloc
                .shared
                .big_pool
                .lock()
                .entry(rounded)
                .or_default()
                .push(offset);
            Ok(())
        }
    }

    fn resolve(&mut self, ptr: OffsetPtr, len: u64) -> *mut u8 {
        self.alloc.shared.arena.ptr(ptr.offset(), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mapping() {
        assert_eq!(class_of(1), 0);
        assert_eq!(class_of(8), 0);
        assert_eq!(class_of(9), 1);
        assert_eq!(class_size(class_of(100)), 128);
        assert_eq!(class_size(class_of(8192)), 8192);
    }

    #[test]
    fn conformance() {
        let alloc = MiLike::new(64 << 20);
        crate::conformance(&alloc, 1 << 20);
    }

    #[test]
    fn local_free_list_is_lifo() {
        let alloc = MiLike::new(16 << 20);
        let mut t = alloc.thread().unwrap();
        let a = t.alloc(64).unwrap();
        let b = t.alloc(64).unwrap();
        t.dealloc(a).unwrap();
        t.dealloc(b).unwrap();
        // LIFO: b comes back first (intrusive stack).
        assert_eq!(t.alloc(64).unwrap(), b);
        assert_eq!(t.alloc(64).unwrap(), a);
    }

    #[test]
    fn remote_frees_are_collected() {
        let alloc = MiLike::new(16 << 20);
        let mut producer = alloc.thread().unwrap();
        let mut consumer = alloc.thread().unwrap();
        // Fill a whole page so the producer must collect remote frees.
        let ptrs: Vec<_> = (0..1024).map(|_| producer.alloc(64).unwrap()).collect();
        for p in &ptrs {
            consumer.dealloc(*p).unwrap();
        }
        let used_before = alloc.memory_usage().data_bytes;
        let again: Vec<_> = (0..1024).map(|_| producer.alloc(64).unwrap()).collect();
        assert_eq!(
            alloc.memory_usage().data_bytes,
            used_before,
            "remote-freed blocks must be reused, not new pages"
        );
        for p in again {
            producer.dealloc(p).unwrap();
        }
    }

    #[test]
    fn big_allocations_roundtrip() {
        let alloc = MiLike::new(64 << 20);
        let mut t = alloc.thread().unwrap();
        let p = t.alloc(1 << 20).unwrap();
        unsafe { t.resolve(p, 1 << 20).write_bytes(1, 1 << 20) };
        t.dealloc(p).unwrap();
        let q = t.alloc(1 << 20).unwrap();
        assert_eq!(p, q, "big pool must recycle");
    }
}
