//! Baseline allocators for the cxlalloc evaluation (paper Table 1).
//!
//! Each baseline reproduces the *architecturally relevant* design of a
//! system the paper compares against:
//!
//! | Baseline | Models | Key property |
//! |---|---|---|
//! | [`MiLike`] | mimalloc | per-thread pages with intrusive free lists — the wall-clock upper bound |
//! | [`BoostLike`] | Boost.Interprocess | one global mutex around a best-fit free list |
//! | [`LightningLike`] | Lightning's internal allocator | global lock plus a per-allocation tracking table (order-of-magnitude memory overhead) |
//! | [`CxlShmLike`] | cxl-shm | 24 B inline headers with an 8 B reference count, fixed heap, 1 KiB max allocation |
//! | [`RallocLike`] | ralloc | lock-free shared partial slabs, separated metadata, blocking GC recovery |
//!
//! All implement [`PodAlloc`], the uniform interface the benchmark
//! harness and the key-value store drive; [`CxlallocAdapter`] wraps the
//! real cxlalloc behind the same interface.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adapter;
mod arena;
mod boostlike;
mod cxlshm;
mod lightning;
mod mi;
mod ralloc;

pub use adapter::CxlallocAdapter;
pub use arena::Arena;
pub use boostlike::BoostLike;
pub use cxlshm::CxlShmLike;
pub use lightning::LightningLike;
pub use mi::MiLike;
pub use ralloc::RallocLike;

use cxl_core::OffsetPtr;
use std::fmt;

/// Errors from baseline allocator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BenchError {
    /// The heap is out of memory.
    OutOfMemory,
    /// The allocator does not support this size (cxl-shm's 1 KiB cap —
    /// the paper reports it *crashes* on MC-12/MC-37; the harness
    /// records this as a crash).
    Unsupported {
        /// Requested size.
        size: usize,
    },
    /// An invalid pointer was passed to `dealloc`.
    BadPointer,
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::OutOfMemory => write!(f, "out of memory"),
            BenchError::Unsupported { size } => {
                write!(f, "allocation of {size} bytes unsupported")
            }
            BenchError::BadPointer => write!(f, "bad pointer"),
        }
    }
}

impl std::error::Error for BenchError {}

/// Recovery strategy (Table 1 `Str.` column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStrategy {
    /// Garbage-collect allocations from dead threads.
    Gc,
    /// Application-driven recovery.
    App,
    /// Not recoverable.
    None,
}

/// Static allocator properties — the rows of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocProps {
    /// Allocator name.
    pub name: &'static str,
    /// Memory kinds targeted (`M`, `XP`, `CXL`, `PM`).
    pub mem: &'static str,
    /// Supports cross-process allocation (pointer alternatives).
    pub cross_process: bool,
    /// Can use `mmap` for large allocations / heap extension.
    pub mmap: bool,
    /// Live threads do not block when another thread fails.
    pub fail_nonblocking: bool,
    /// Recovery behavior: `Some(true)` = non-blocking, `Some(false)` =
    /// blocking, `None` = not recoverable.
    pub recovery_nonblocking: Option<bool>,
    /// Recovery strategy.
    pub strategy: RecoveryStrategy,
}

/// Memory consumption snapshot — the PSS proxy reported by the figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryUsage {
    /// Heap data bytes in use (high-water mark of carved memory).
    pub data_bytes: u64,
    /// Allocator metadata bytes (headers, tables, descriptors).
    pub metadata_bytes: u64,
}

impl MemoryUsage {
    /// Total bytes (the "PSS" reported in Figures 8–10).
    pub fn total(&self) -> u64 {
        self.data_bytes + self.metadata_bytes
    }
}

/// A pod allocator instance, shared by all benchmark threads.
pub trait PodAlloc: Send + Sync + 'static {
    /// Table 1 properties.
    fn props(&self) -> AllocProps;
    /// Registers a worker thread.
    ///
    /// # Errors
    ///
    /// Returns a message when no more threads can register.
    fn thread(&self) -> Result<Box<dyn PodAllocThread>, String>;
    /// Current memory consumption.
    fn memory_usage(&self) -> MemoryUsage;
}

/// A per-thread allocation handle.
pub trait PodAllocThread: Send {
    /// Allocates `size` bytes.
    ///
    /// # Errors
    ///
    /// [`BenchError::OutOfMemory`] / [`BenchError::Unsupported`].
    fn alloc(&mut self, size: usize) -> Result<OffsetPtr, BenchError>;
    /// Detectable allocation: `dst` names the 8-byte shared cell the
    /// caller will store the resulting pointer into, letting a
    /// recoverable allocator decide on crash recovery whether the
    /// pointer escaped. Allocators without detectable allocation fall
    /// back to a plain allocation (and hence leak or need GC after a
    /// crash — the Figure 7 distinction).
    ///
    /// # Errors
    ///
    /// As [`PodAllocThread::alloc`].
    fn alloc_detectable(
        &mut self,
        size: usize,
        _dst: OffsetPtr,
    ) -> Result<OffsetPtr, BenchError> {
        self.alloc(size)
    }
    /// Frees an allocation.
    ///
    /// # Errors
    ///
    /// [`BenchError::BadPointer`] for invalid frees.
    fn dealloc(&mut self, ptr: OffsetPtr) -> Result<(), BenchError>;
    /// Resolves a pointer for `len` bytes of access.
    fn resolve(&mut self, ptr: OffsetPtr, len: u64) -> *mut u8;
    /// The allocator-level thread identity, if the allocator has one
    /// (cxlalloc's 16-bit thread id — used by crash harnesses to drive
    /// allocator-level recovery).
    fn thread_id(&self) -> Option<u16> {
        None
    }
    /// Read barrier executed by data structures before reading through
    /// `ptr` — models per-object synchronization some allocators impose
    /// (cxl-shm's reference counts). Default: none.
    fn read_barrier(&mut self, _ptr: OffsetPtr) {}
    /// Maintenance hook (huge-heap cleanup, cache trims).
    fn maintain(&mut self) {}
}

/// Uniform conformance suite run against every baseline by each
/// module's tests.
#[cfg(test)]
pub(crate) fn conformance(alloc: &dyn PodAlloc, max_size: usize) {
    let mut t = alloc.thread().unwrap();
    // Basic roundtrip and write-through.
    let sizes: Vec<usize> = [8usize, 24, 100, 512, 1000, 4000, 64 << 10]
        .into_iter()
        .filter(|&s| s <= max_size)
        .collect();
    let mut ptrs = Vec::new();
    for &size in &sizes {
        let p = t.alloc(size).unwrap();
        unsafe { t.resolve(p, size as u64).write_bytes(0xA5, size) };
        ptrs.push((p, size));
    }
    // No overlap.
    for (i, &(p, s)) in ptrs.iter().enumerate() {
        for &(q, r) in &ptrs[i + 1..] {
            assert!(
                p.offset() + s as u64 <= q.offset() || q.offset() + r as u64 <= p.offset(),
                "{p} (+{s}) overlaps {q} (+{r})"
            );
        }
    }
    for (p, _) in ptrs {
        t.dealloc(p).unwrap();
    }
    // Reuse after free.
    let a = t.alloc(64).unwrap();
    t.dealloc(a).unwrap();
    let _b = t.alloc(64).unwrap();
    // Multi-thread churn with remote frees.
    std::thread::scope(|s| {
        let (tx, rx) = std::sync::mpsc::channel::<OffsetPtr>();
        s.spawn(|| {
            let mut t = alloc.thread().unwrap();
            for i in 0..500 {
                let p = t.alloc(8 + i % 256).unwrap();
                tx.send(p).unwrap();
            }
            drop(tx);
        });
        s.spawn(move || {
            let mut t = alloc.thread().unwrap();
            while let Ok(p) = rx.recv() {
                t.dealloc(p).unwrap();
            }
        });
    });
    assert!(alloc.memory_usage().total() > 0);
}
