//! Adapter exposing the real cxlalloc behind the benchmark interface.

use crate::{AllocProps, BenchError, MemoryUsage, PodAlloc, PodAllocThread, RecoveryStrategy};
use cxl_core::{AllocError, AttachOptions, Cxlalloc, OffsetPtr, ThreadHandle};
use cxl_pod::Pod;
use parking_lot::Mutex;
use std::sync::Arc;

/// Wraps [`Cxlalloc`] as a [`PodAlloc`] so the same harness drives it
/// and every baseline.
///
/// The adapter spreads registered threads round-robin over the pod's
/// simulated processes, matching the paper's cross-process benchmark
/// setup ("10 processes ... 1 to 8 threads per process").
#[derive(Debug, Clone)]
pub struct CxlallocAdapter {
    pod: Pod,
    heaps: Arc<Vec<Cxlalloc>>,
    next: Arc<Mutex<usize>>,
    recoverable: bool,
}

impl CxlallocAdapter {
    /// Attaches cxlalloc to `processes` simulated processes of a fresh
    /// or existing pod.
    ///
    /// # Panics
    ///
    /// Panics if attach fails (layout mismatch — impossible for pods
    /// built by this crate's versions).
    pub fn new(pod: Pod, processes: usize, options: AttachOptions) -> Self {
        let recoverable = options.recoverable;
        let heaps: Vec<Cxlalloc> = (0..processes.max(1))
            .map(|_| {
                Cxlalloc::attach(pod.spawn_process(), options.clone()).expect("attach")
            })
            .collect();
        CxlallocAdapter {
            pod,
            heaps: Arc::new(heaps),
            next: Arc::new(Mutex::new(0)),
            recoverable,
        }
    }

    /// The underlying pod.
    pub fn pod(&self) -> &Pod {
        &self.pod
    }

    /// The per-process heap handles.
    pub fn heaps(&self) -> &[Cxlalloc] {
        &self.heaps
    }
}

fn map_err(e: AllocError) -> BenchError {
    match e {
        AllocError::OutOfMemory { .. }
        | AllocError::DescriptorPoolExhausted { .. }
        | AllocError::HazardSlotsExhausted { .. } => BenchError::OutOfMemory,
        AllocError::InvalidSize { size } => BenchError::Unsupported { size },
        _ => BenchError::BadPointer,
    }
}

impl PodAlloc for CxlallocAdapter {
    fn props(&self) -> AllocProps {
        AllocProps {
            name: if self.recoverable {
                "cxlalloc"
            } else {
                "cxlalloc-nonrecoverable"
            },
            mem: "XP, CXL",
            cross_process: true,
            mmap: true,
            fail_nonblocking: true,
            recovery_nonblocking: Some(true),
            strategy: RecoveryStrategy::App,
        }
    }

    fn thread(&self) -> Result<Box<dyn PodAllocThread>, String> {
        let mut next = self.next.lock();
        let heap = &self.heaps[*next % self.heaps.len()];
        *next += 1;
        drop(next);
        let handle = heap.register_thread().map_err(|e| e.to_string())?;
        Ok(Box::new(CxlallocThread {
            handle,
        }))
    }

    fn memory_usage(&self) -> MemoryUsage {
        let stats = self.heaps[0].stats();
        MemoryUsage {
            data_bytes: stats.small_bytes + stats.large_bytes,
            metadata_bytes: stats.hwcc_bytes,
        }
    }
}

struct CxlallocThread {
    handle: ThreadHandle,
}

impl PodAllocThread for CxlallocThread {
    fn alloc(&mut self, size: usize) -> Result<OffsetPtr, BenchError> {
        self.handle.alloc(size).map_err(map_err)
    }

    fn alloc_detectable(&mut self, size: usize, dst: OffsetPtr) -> Result<OffsetPtr, BenchError> {
        self.handle.alloc_detectable(size, dst).map_err(map_err)
    }

    fn dealloc(&mut self, ptr: OffsetPtr) -> Result<(), BenchError> {
        self.handle.dealloc(ptr).map_err(map_err)
    }

    fn resolve(&mut self, ptr: OffsetPtr, len: u64) -> *mut u8 {
        self.handle
            .resolve(ptr, len)
            .expect("benchmark pointers are heap pointers")
    }

    fn thread_id(&self) -> Option<u16> {
        Some(self.handle.tid().raw())
    }

    fn maintain(&mut self) {
        self.handle.cleanup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_pod::PodConfig;

    fn adapter() -> CxlallocAdapter {
        let pod = Pod::new(PodConfig {
            small_max_slabs: 512,
            ..PodConfig::small_for_tests()
        })
        .unwrap();
        CxlallocAdapter::new(pod, 2, AttachOptions::default())
    }

    #[test]
    fn conformance() {
        let alloc = adapter();
        crate::conformance(&alloc, 1 << 20);
    }

    #[test]
    fn threads_spread_over_processes() {
        let alloc = adapter();
        assert_eq!(alloc.heaps().len(), 2);
        let _t1 = alloc.thread().unwrap();
        let _t2 = alloc.thread().unwrap();
        assert_eq!(alloc.pod().process_count(), 2);
    }

    #[test]
    fn cross_process_pointers_resolve() {
        let alloc = adapter();
        let mut a = alloc.thread().unwrap(); // process 0
        let mut b = alloc.thread().unwrap(); // process 1
        let p = a.alloc(100).unwrap();
        unsafe { a.resolve(p, 100).write_bytes(7, 100) };
        let raw = b.resolve(p, 100);
        assert_eq!(unsafe { *raw }, 7);
        b.dealloc(p).unwrap();
    }
}
