//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the tiny subset of `parking_lot`'s API it
//! actually uses — `Mutex` and `RwLock` whose guards are returned
//! directly (no `Result`, no lock poisoning) — implemented on top of the
//! std primitives. A panic while a lock is held simply clears the poison
//! flag on the next acquisition, matching `parking_lot`'s semantics of
//! not propagating poison; this matters here because the crash-injection
//! harness in `cxl-core` unwinds victim threads on purpose.

#![warn(missing_docs)]

use std::fmt;
use std::sync::TryLockError;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    #[inline]
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Poison from a
    /// panicking holder is ignored, as in `parking_lot`.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(g),
            Err(poisoned) => MutexGuard(poisoned.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard(poisoned.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed
    /// with exclusive access).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    #[inline]
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking until available.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(poisoned) => RwLockReadGuard(poisoned.into_inner()),
        }
    }

    /// Acquires exclusive access, blocking until available.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(poisoned) => RwLockWriteGuard(poisoned.into_inner()),
        }
    }

    /// Returns a mutable reference to the inner value.
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poison_is_ignored() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
