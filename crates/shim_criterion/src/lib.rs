//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the subset of criterion's API the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! `throughput`, the [`criterion_group!`]/[`criterion_main!`] macros, and
//! [`black_box`]. Measurement is a plain calibrated timing loop: each
//! benchmark is warmed up, then run for `sample_size` samples whose
//! median ns/iter (and derived throughput) is printed. No statistics
//! beyond that — these numbers are for relative comparisons between
//! in-repo variants, not publication.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// One finished benchmark's measurement, kept by the driver so harness
/// binaries (e.g. `bench-snapshot`) can post-process results instead of
/// scraping stdout.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Group name (first path component of `group/id`).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median ns per iteration.
    pub median_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
    /// The group's throughput annotation, if any.
    pub throughput: Option<Throughput>,
    /// Auxiliary counters attached after measurement via
    /// [`BenchmarkGroup::annotate_last`] (e.g. per-op memory-traffic
    /// rates observed while the samples ran), serialized by
    /// `bench-snapshot` alongside the timing fields.
    pub counters: Vec<(String, f64)>,
}

impl BenchRecord {
    /// `group/id`, the path criterion reports under.
    pub fn path(&self) -> String {
        format!("{}/{}", self.group, self.id)
    }

    /// Elements (or bytes) per second implied by the median, when the
    /// group carries a throughput annotation.
    pub fn per_second(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => {
                Some(n as f64 * 1e9 / self.median_ns)
            }
            None => None,
        }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    sample_size: usize,
    records: Vec<BenchRecord>,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        let sample_size = self.effective_sample_size();
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size,
        }
    }

    /// Drains the measurements recorded so far.
    pub fn take_records(&mut self) -> Vec<BenchRecord> {
        std::mem::take(&mut self.records)
    }

    fn effective_sample_size(&self) -> usize {
        if self.sample_size == 0 {
            20
        } else {
            self.sample_size
        }
    }
}

/// A named group of benchmarks sharing a throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        if let Some(record) = bencher.record(&self.name, &id, self.throughput) {
            self.criterion.records.push(record);
        }
    }

    /// Attaches an auxiliary counter to the most recently recorded
    /// benchmark. No-op when the last `bench_function` produced no
    /// record (its routine never called [`Bencher::iter`]).
    pub fn annotate_last(&mut self, key: impl Into<String>, value: f64) {
        if let Some(record) = self.criterion.records.last_mut() {
            record.counters.push((key.into(), value));
        }
    }

    /// Ends the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

/// Hands the routine under test to the timing loop.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm up and calibrate: grow the batch until one batch takes
        // ~5 ms so Instant overhead stays negligible.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }

    fn record(&self, group: &str, id: &str, throughput: Option<Throughput>) -> Option<BenchRecord> {
        if self.samples_ns.is_empty() {
            println!("{group}/{id}: no samples (Bencher::iter never called)");
            return None;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.2} Melem/s", n as f64 * 1e3 / median)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10.2} MiB/s", n as f64 * 1e9 / median / (1 << 20) as f64)
            }
            None => String::new(),
        };
        println!("{group}/{id}: {median:>10.1} ns/iter  [{min:.1} .. {max:.1}]{rate}");
        Some(BenchRecord {
            group: group.to_string(),
            id: id.to_string(),
            median_ns: median,
            min_ns: min,
            max_ns: max,
            throughput,
            counters: Vec::new(),
        })
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_produces_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim_selftest");
        group.throughput(Throughput::Elements(1));
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }
}
