//! Partial failure and non-blocking recovery (paper §3.4, Figure 7).
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```
//!
//! A victim thread crashes *inside* the allocator while inserting into
//! a recoverable queue. Live threads keep allocating throughout (no
//! blocking); the crashed thread's pending operation is then redone
//! idempotently from its 8-byte log, its interrupted allocation is
//! rolled back via the memento cell, and the thread slot is adopted and
//! reused — nothing leaks, nobody waits.

use cxlalloc::baselines::{CxlallocAdapter, PodAlloc, PodAllocThread};
use cxlalloc::core::crash::{self, CrashPlan};
use cxlalloc::core::{AttachOptions, ThreadId};
use cxlalloc::pod::{CoreId, Pod, PodConfig};
use cxlalloc::recoverable::RecoverableQueue;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pod = Pod::new(PodConfig::default())?;
    let alloc = CxlallocAdapter::new(pod, 1, AttachOptions::default());
    let heap = alloc.heaps()[0].clone();

    let mut boot: Box<dyn PodAllocThread> = alloc.thread().expect("boot thread");
    let queue = RecoverableQueue::create(boot.as_mut()).expect("create queue");

    // The victim enqueues 1000 items but is killed inside the
    // allocator's hot path at item 500.
    let victim_tid: u16 = std::thread::scope(|s| {
        s.spawn(|| {
            let mut handle = alloc.thread().expect("victim");
            let tid = handle.thread_id().expect("cxlalloc thread id");
            crash::arm(CrashPlan {
                at: "slab::alloc_block::after_clear",
                skip: 500,
            });
            let died = crash::catch(std::panic::AssertUnwindSafe(|| {
                for i in 0..1000 {
                    queue
                        .enqueue(handle.as_mut(), 1, i, 64)
                        .expect("enqueue");
                }
            }))
            .is_err();
            assert!(died, "the crash plan should have fired");
            println!("victim thread{tid} crashed inside alloc() at item ~500");
            tid
        })
        .join()
        .unwrap()
    });

    // Live threads are unaffected — the heap's shared structures are
    // lock-free, so nothing blocks on the corpse.
    let mut live = alloc.thread().expect("live thread");
    for i in 0..10_000 {
        let p = live.alloc(8 + i % 512).expect("live alloc");
        live.dealloc(p).expect("live free");
    }
    println!("a live thread completed 10,000 alloc/free pairs while the victim lay dead");

    // Allocator-level recovery: redo the interrupted operation from the
    // 8-byte log. The pending block had a memento destination that was
    // never written, so it is rolled back — no leak.
    let tid = ThreadId::new(victim_tid).unwrap();
    heap.mark_crashed(tid)?;
    let report = heap.recover(tid, CoreId(0))?;
    println!(
        "allocator recovery: interrupted={:?} outcome={:?} lost_block={:?}",
        report.interrupted, report.outcome, report.lost_block
    );

    // Structure-level recovery: the queue's memento for slot 1 decides
    // whether the in-flight enqueue completed.
    let outcome = queue.recover_slot(boot.as_mut(), 1);
    println!("queue recovery for the victim's slot: {outcome}");

    // The victim's ~500 completed enqueues survived.
    let mut drained = 0;
    while queue.dequeue(boot.as_mut()).is_some() {
        drained += 1;
    }
    println!("drained {drained} items that the victim enqueued before dying");
    assert!((400..=600).contains(&drained));

    // The slot is adopted and fully reusable (its huge-heap state is
    // reconstructed deterministically from the segment).
    let (mut adopted, second_report) = heap.adopt(tid, CoreId(0))?;
    assert_eq!(second_report.interrupted, None, "log already clean");
    let p = adopted.alloc(4096)?;
    adopted.dealloc(p)?;
    println!("victim slot adopted and allocating again");

    heap.check_invariants(CoreId(0)).expect("invariants hold");
    println!("all heap invariants hold — recovered without leaking or blocking");
    Ok(())
}
