//! Cross-process huge allocations and the hazard-offset protocol
//! (paper §3.3.2 and §5.3).
//!
//! ```sh
//! cargo run --example huge_sharing
//! ```
//!
//! Huge allocations are backed by individual memory mappings that must
//! exist in every process that touches them and must be unmapped in
//! *all* processes before their address space can be reused. This
//! example walks the whole lifecycle: allocation (reservation claim +
//! descriptor + hazard publish + local map), cross-process fault-in,
//! free, hazard-blocked reclamation, and final reuse of the address
//! space.

use cxlalloc::core::{AttachOptions, Cxlalloc};
use cxlalloc::pod::{Pod, PodConfig};

const GIB: usize = 1 << 30;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pod = Pod::new(PodConfig {
        huge_capacity: 8 << 30, // address space only; untouched pages are free
        huge_regions: 256,
        ..PodConfig::default()
    })?;
    let proc_a = pod.spawn_process();
    let proc_b = pod.spawn_process();
    let heap_a = Cxlalloc::attach(proc_a.clone(), AttachOptions::default())?;
    let heap_b = Cxlalloc::attach(proc_b.clone(), AttachOptions::default())?;
    let mut alice = heap_a.register_thread()?;
    let mut bob = heap_b.register_thread()?;

    // A 1 GiB allocation: claims adjacent reservation regions, writes a
    // descriptor, publishes a hazard offset, installs the local mapping.
    let big = alice.alloc(GIB)?;
    println!(
        "A allocated 1 GiB at {big} (region size {} MiB, {} mappings installed in A)",
        pod.layout().huge.region_size >> 20,
        proc_a.maps_installed()
    );
    unsafe { *alice.resolve(big, 8)? = 0xEE };

    // B touches it: fault → descriptor walk → hazard publish → map.
    let raw = bob.resolve(big, 8)?;
    assert_eq!(unsafe { *raw }, 0xEE);
    println!(
        "B faulted it in ({} fault(s), {} mapping(s) in B)",
        proc_b.fault_count(),
        proc_b.maps_installed()
    );

    // A frees it. B's hazard still protects B's mapping, so A's cleanup
    // cannot reclaim the address space yet.
    alice.dealloc(big)?;
    assert_eq!(alice.cleanup(), 0);
    println!("A freed it; reclamation blocked by B's hazard offset (as it must be)");

    // B's periodic cleanup notices the free bit, drops its mapping and
    // hazard; now A reclaims descriptor + address space.
    bob.cleanup();
    let reclaimed = alice.cleanup();
    assert_eq!(reclaimed, 1);
    println!("after B's cleanup pass, A reclaimed the allocation");

    // The address space is reused: the next 1 GiB lands at the same
    // offset.
    let again = alice.alloc(GIB)?;
    assert_eq!(again, big, "address space must be recycled");
    println!("a new 1 GiB allocation reused the same offset {again}");
    alice.dealloc(again)?;
    alice.cleanup();

    // Burn through many alloc/free cycles to show stable descriptor and
    // address-space reuse (the §5.3 'punishingly unrealistic' pattern,
    // briefly).
    let start = std::time::Instant::now();
    const OPS: usize = 2000;
    for i in 0..OPS {
        let p = alice.alloc(GIB)?;
        if i % 2 == 0 {
            alice.dealloc(p)?; // local free
        } else {
            bob.dealloc(p)?; // remote free through the descriptor walk
        }
        alice.cleanup();
        bob.cleanup();
    }
    let dt = start.elapsed().as_secs_f64();
    println!(
        "{OPS} × 1 GiB alloc/free cycles in {dt:.2}s ({:.0} ops/s), \
         {} descriptors in flight at the end",
        OPS as f64 / dt,
        alice.huge_state().desc_slots.len()
    );
    heap_a.check_invariants(alice.core()).expect("invariants hold");
    println!("done — huge-heap invariants hold");
    Ok(())
}
