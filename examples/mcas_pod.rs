//! Running cxlalloc on a pod with **no** inter-host hardware cache
//! coherence (paper Figure 1(B), §4).
//!
//! ```sh
//! cargo run --example mcas_pod
//! ```
//!
//! The pod's SWcc region is served by per-core caches that nothing ever
//! invalidates; the HWcc metadata region is device-biased and
//! uncachable, and every CAS becomes a memory-side mCAS executed by the
//! near-memory-processing device through its spwr/sprd register
//! protocol. The allocator runs unmodified — that is the point of the
//! paper's metadata split.

use cxlalloc::core::{AttachOptions, Cxlalloc};
use cxlalloc::pod::{CoreId, HwccMode, Pod, PodConfig, SimMemory};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pod = Pod::with_simulation(PodConfig::default(), HwccMode::None)?;
    let heap = Cxlalloc::attach(pod.spawn_process(), AttachOptions::default())?;

    let mut producer = heap.register_thread()?;
    let mut consumer = heap.register_thread()?;

    // Producer/consumer churn: every free is remote and must go through
    // the mCAS counter protocol.
    let before = pod.memory().stats();
    for round in 0..20 {
        let ptrs: Vec<_> = (0..512)
            .map(|_| producer.alloc(64).expect("alloc"))
            .collect();
        for p in ptrs {
            consumer.dealloc(p).expect("remote free");
        }
        let _ = round;
    }
    let delta = pod.memory().stats().since(&before);
    println!("producer/consumer of 10,240 blocks on a no-HWcc pod:");
    println!("  mCAS issued:        {} ok, {} failed", delta.mcas_ok, delta.mcas_fail);
    println!("  coherent CAS:       {} (must be zero)", delta.cas_ok + delta.cas_fail);
    println!("  cacheline flushes:  {}", delta.flushes + delta.writebacks);
    println!("  stale-tolerant cached hits: {}", delta.cached_hits);
    assert_eq!(delta.cas_ok + delta.cas_fail, 0);
    assert!(delta.mcas_ok > 0);

    // Raw mCAS through the device's spwr/sprd interface.
    let sim = pod
        .memory()
        .as_any()
        .downcast_ref::<SimMemory>()
        .expect("simulated backend");
    let target = pod.layout().huge.reservation_at(7);
    sim.nmp().spwr(0, target, 0, 99);
    let result = sim.nmp().sprd(0);
    println!(
        "raw spwr/sprd pair on reservation cell 7: success={} previous={}",
        result.success, result.previous
    );

    // Contending pair: the second spwr/sprd on the same address fails,
    // as in the paper's Figure 6(b).
    sim.nmp().spwr(0, target, 99, 100);
    sim.nmp().spwr(1, target, 99, 200);
    let first = sim.nmp().sprd(0);
    let second = sim.nmp().sprd(1);
    println!(
        "competing pairs: first success={}, second success={} (device fails the loser)",
        first.success, second.success
    );
    assert!(first.success && !second.success);

    // Modeled time: mCAS round trips dominate the virtual clocks.
    println!(
        "modeled time on the consumer's core: {:.2} ms (mostly {} mCAS round trips)",
        pod.memory().virtual_ns(consumer.core()) as f64 / 1e6,
        delta.mcas_ok + delta.mcas_fail
    );
    heap.check_invariants(CoreId(0)).expect("invariants hold");
    println!("invariants hold under software-only coherence — done");
    Ok(())
}
