//! Schedule exploration and fault injection, end to end:
//!
//! 1. a clean campaign — random multi-host schedules with crashes and
//!    recoveries, every run checked against the full invariant suite;
//! 2. an adversarial campaign — core 0's flushes are silently dropped,
//!    the explorer finds the seeds that corrupt the heap, shrinks one
//!    to a minimal reproducer, and replays it byte-identically.
//!
//! Run with: `cargo run --release --example fault_exploration`

use cxlalloc::core::explore::Explorer;
use cxlalloc::core::sched::FaultPlan;
use cxlalloc::pod::fault::{FaultKind, FaultRule};

fn main() {
    // -- 1. No faults: everything must pass. ----------------------------
    let clean = Explorer::default();
    let report = clean.explore(0, 40);
    println!(
        "clean campaign: {} runs, {} allocs, {} crashes, {} recoveries, {} failures",
        report.runs,
        report.total_allocs,
        report.total_crashes,
        report.total_recoveries,
        report.failures.len()
    );
    assert!(report.all_passed(), "clean runs must never fail");

    // -- 2. Drop every flush core 0 issues: a stale-metadata bug on
    //       demand. The explorer hunts for seeds whose schedules expose
    //       it, then shrinks the first one. -----------------------------
    let lossy = Explorer {
        plan: FaultPlan::of(vec![FaultRule::new(FaultKind::DropFlush).on_core(0)]),
        ..Explorer::default()
    };
    let report = lossy.explore(0, 100);
    println!(
        "lossy campaign: {} runs, {} failures",
        report.runs,
        report.failures.len()
    );
    let Some((seed, failure)) = report.failures.first() else {
        println!("no failing seed in this window — try more runs");
        return;
    };
    println!("first failing seed {seed}: {failure}");

    // Deterministic replay: the same seed reproduces the same failure,
    // down to the failing step and message.
    let a = lossy.run_seed(*seed).unwrap_err();
    let b = lossy.run_seed(*seed).unwrap_err();
    assert_eq!((a.step, &a.message), (b.step, &b.message));
    println!("replayed seed {seed} twice: identical failure");

    // Shrink to a 1-minimal reproducer: removing any single step makes
    // the failure vanish.
    let full = lossy.schedule_for(*seed);
    let minimal = lossy.shrink(&full);
    println!(
        "shrunk schedule: {} steps -> {} steps",
        full.steps.len(),
        minimal.steps.len()
    );
    for step in &minimal.steps {
        println!("  {step:?}");
    }
    assert!(lossy.fails(&minimal));
}
