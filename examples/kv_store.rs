//! A shared in-memory key-value store over cxlalloc — the paper's
//! motivating use case (§1: "applications that want to dynamically
//! allocate and share memory in a CXL pod require a memory allocator").
//!
//! ```sh
//! cargo run --release --example kv_store
//! ```
//!
//! Four worker threads spread over two simulated processes run a
//! YCSB-A-style mix (25 % insert / 25 % delete / 50 % read) against one
//! lock-free hash table whose entries live in pod memory.

use cxlalloc::baselines::{CxlallocAdapter, PodAlloc};
use cxlalloc::core::AttachOptions;
use cxlalloc::kvstore::KvStore;
use cxlalloc::pod::{Pod, PodConfig};
use cxlalloc::workloads::{KvOp, OpStream, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const THREADS: u32 = 4;
const OPS_PER_THREAD: u64 = 200_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pod = Pod::new(PodConfig {
        small_max_slabs: 1 << 16, // 2 GiB of small-heap capacity
        ..PodConfig::default()
    })?;
    let alloc = CxlallocAdapter::new(pod, 2, AttachOptions::default());
    let store = KvStore::new(1 << 18, THREADS as usize + 1);

    let spec = WorkloadSpec::ycsb_a();
    println!(
        "running {} ops of {} ({}% insert / {}% delete) on {THREADS} threads in 2 processes",
        OPS_PER_THREAD * THREADS as u64,
        spec.name,
        spec.insert_pct,
        spec.delete_pct
    );

    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let mut worker = store.worker(alloc.thread().expect("register worker"));
            let spec = spec.clone();
            s.spawn(move || {
                let mut stream = OpStream::new(spec, StdRng::seed_from_u64(t as u64));
                let (mut hits, mut misses) = (0u64, 0u64);
                for _ in 0..OPS_PER_THREAD {
                    match stream.next_op() {
                        KvOp::Insert {
                            key,
                            key_len,
                            value_len,
                        } => worker.insert(key, key_len, value_len).expect("insert"),
                        KvOp::Read {
                            key,
                        } => match worker.get(key) {
                            Some(_) => hits += 1,
                            None => misses += 1,
                        },
                        KvOp::Delete {
                            key,
                        } => {
                            let _ = worker.delete(key);
                        }
                    }
                }
                worker.drain_retired();
                println!("  thread {t}: {hits} read hits, {misses} misses");
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    let total = OPS_PER_THREAD * THREADS as u64;
    let usage = alloc.memory_usage();
    println!(
        "{total} ops in {seconds:.2}s = {:.2} M ops/s; {} live entries; \
         heap {} MiB ({} B HWcc metadata)",
        total as f64 / seconds / 1e6,
        store.len(),
        usage.data_bytes >> 20,
        usage.metadata_bytes,
    );
    alloc.heaps()[0]
        .check_invariants(cxlalloc::pod::CoreId(0))
        .expect("invariants hold after the run");
    println!("heap invariants hold — done");
    Ok(())
}
