//! Quickstart: allocate in one process, read and free in another.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Demonstrates the three pointer-consistency guarantees the paper
//! defines (§1): the same offset pointer refers to the same physical
//! memory in every process (PC-S), and a pointer allocated in one
//! process is immediately dereferenceable in another (PC-T) — the
//! second process takes a fault that the allocator's handler resolves
//! by installing the mapping, exactly like the paper's SIGSEGV
//! protocol.

use cxlalloc::core::{AttachOptions, Cxlalloc};
use cxlalloc::pod::{Pod, PodConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One pod; the segment starts all-zero, which *is* a valid empty
    // heap — no cross-process initialization handshake is needed.
    let pod = Pod::new(PodConfig::default())?;

    // Two "processes" attach independently.
    let process_a = pod.spawn_process();
    let process_b = pod.spawn_process();
    let heap_a = Cxlalloc::attach(process_a, AttachOptions::default())?;
    let heap_b = Cxlalloc::attach(process_b.clone(), AttachOptions::default())?;

    let mut alice = heap_a.register_thread()?;
    let mut bob = heap_b.register_thread()?;

    // Alice allocates 1 KiB and writes a message.
    let ptr = alice.alloc(1024)?;
    let msg = b"hello from process A via CXL shared memory";
    unsafe {
        std::ptr::copy_nonoverlapping(msg.as_ptr(), alice.resolve(ptr, 1024)?, msg.len());
    }
    println!("process A allocated {ptr} and wrote {} bytes", msg.len());

    // Bob dereferences the *same offset pointer*. His process has never
    // mapped this slab: the resolve faults, the handler checks the heap
    // length and installs the mapping, and the access retries.
    let faults_before = process_b.fault_count();
    let raw = bob.resolve(ptr, 1024)?;
    let read = unsafe { std::slice::from_raw_parts(raw, msg.len()) };
    assert_eq!(read, msg);
    println!(
        "process B read it back after {} fault(s): {:?}",
        process_b.fault_count() - faults_before,
        std::str::from_utf8(read)?
    );

    // Bob frees it — a *remote free*, synchronized through the slab's
    // HWcc counter rather than any lock.
    bob.dealloc(ptr)?;
    println!("process B freed the allocation (remote free)");

    // A big allocation goes to the huge heap, backed by its own mapping.
    let big = alice.alloc(64 << 20)?;
    println!("process A made a 64 MiB huge allocation at {big}");
    unsafe { *alice.resolve(big, 8)? = 42 };
    alice.dealloc(big)?;
    alice.cleanup(); // hazard-offset scan reclaims the address space

    let stats = heap_a.stats();
    println!(
        "heap stats: {} small slabs, {} large slabs, {} bytes of HWcc metadata",
        stats.small_slabs, stats.large_slabs, stats.hwcc_bytes
    );
    heap_a.check_invariants(alice.core()).expect("invariants hold");
    println!("all invariants hold — done");
    Ok(())
}
